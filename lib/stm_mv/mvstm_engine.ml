(* Multi-version STM — the paper's §6 side experiment.

   "We also experimented with ... multi-versioning, but we could not see a
   clear advantage of those techniques in the considered workloads."

   This engine lets the ablation harness reproduce that finding.  It is a
   TL2-style word-based STM (lazy acquisition, global version clock)
   extended with per-stripe *version chains*, in the spirit of LSA-STM and
   JVSTM (paper §2.1):

   - each committing writer, while holding the stripe lock, prepends a
     version record containing the words it is about to overwrite, stamped
     with the stripe's new version;
   - a transaction that reads a stripe newer than its snapshot and has an
     empty write set switches to *snapshot mode*: instead of aborting it
     reconstructs the value at its snapshot from the chains — read-only
     transactions never abort (unless the chain was truncated);
   - writes are not allowed in snapshot mode (the transaction restarts as a
     normal update transaction, with snapshot mode disabled).

   Version records live in the transactional heap:
   [new_version; prev_record; nwords; (addr, old_value) x nwords].
   Chains are truncated at [max_chain] records; a snapshot older than the
   chain aborts with a "snapshot too old" validation failure.

   Intended for the simulator: chain heads are plain (non-atomic) words,
   fine under the cooperative scheduler but racy on native domains (a
   native reader may briefly miss the newest record and retry via the
   lock double-check).

   In kernel axes this is lazy + invisible + commit-time + MULTI
   versioning: TL2's commit path (all in [Kernel.Vlock]) with the version-
   chain maintenance spliced in between validation and write-back, and the
   snapshot-mode read layered over the invisible read. *)

open Stm_intf
open Kernel

type config = {
  granularity_words : int;
  table_bits : int;
  max_chain : int;
  seed : int;
  cm : Cm.Cm_intf.spec;
      (* rollback/throttle policy only: conflicts stay timid at commit-time
         acquisition, but the manager owns the retry back-off, the adaptive
         throttle and the escalation budget *)
}

let default_config =
  {
    granularity_words = 4;
    table_bits = 18;
    max_chain = 8;
    seed = 0xC0FFEE;
    cm = Cm.Cm_intf.Timid;
  }

(* version record layout *)
let vr_version = 0
let vr_prev = 1
let vr_nwords = 2
let vr_pairs = 3

type t = {
  heap : Memory.Heap.t;
  stripe : Memory.Stripe.t;
  locks : Runtime.Tmatomic.t array;
  hist : int array;  (** per-stripe version-chain head (heap address or 0) *)
  chain_len : int array;
  clock : Runtime.Tmatomic.t;
  descs : Txdesc.t array;
  stats : Stats.t;
  eid : int;  (* metrics-registry engine id *)
  cm : Cm.Cm_intf.t;
  ser : Serial.t;  (* irrevocability token (escalation / explicit) *)
  max_chain : int;
  snapshot_reads : Runtime.Tmatomic.t;  (** telemetry: old-version serves *)
}

let name = "mvstm"

let create ?(config = default_config) heap =
  let stripe =
    Memory.Stripe.create ~granularity_words:config.granularity_words
      ~table_bits:config.table_bits ()
  in
  let n = Memory.Stripe.table_size stripe in
  {
    heap;
    stripe;
    locks = Array.init n (fun _ -> Runtime.Tmatomic.make 0);
    hist = Array.make n 0;
    chain_len = Array.make n 0;
    clock = Runtime.Tmatomic.make 0;
    descs = Driver.make_descs ~seed:config.seed ();
    stats = Stats.create ();
    eid = Obs.Metrics.register_engine name;
    cm = Cm.Factory.make config.cm;
    ser = Serial.create ();
    max_chain = config.max_chain;
    snapshot_reads = Runtime.Tmatomic.make 0;
  }

let rollback t (d : Txdesc.t) reason =
  Hooks.phase_commit d.tid;
  Hooks.rollback ~stats:t.stats ~cm:t.cm ~ser:t.ser d ~reason

(* Reconstruct the value [addr] had at the snapshot by walking the
   stripe's version chain newest-to-oldest; every record newer than the
   snapshot that touched [addr] pushes the reconstruction further into
   the past. *)
let snapshot_read t (d : Txdesc.t) addr idx =
  let costs = Runtime.Costs.get () in
  let rec stable_attempt () =
    let lv = Runtime.Tmatomic.get t.locks.(idx) in
    if Vlock.is_locked lv then begin
      Stats.wait t.stats ~tid:d.tid;
      Runtime.Exec.pause ();
      stable_attempt ()
    end
    else begin
      Runtime.Exec.tick costs.mem;
      let current = Memory.Heap.unsafe_read t.heap addr in
      let value = ref current in
      let found = ref false in
      (* prev = 0 terminates a COMPLETE chain (reconstruction sound even
         if no record mentioned [addr]: it was never overwritten); prev =
         -1 marks a truncation point (older values were dropped). *)
      let rec walk rec_addr =
        if rec_addr = -1 then
          (* truncated before reaching the snapshot: the old value is gone *)
          rollback t d Tx_signal.Rw_validation
        else if rec_addr <> 0 then begin
          Runtime.Exec.tick (costs.mem * 2);
          let v = Memory.Heap.unsafe_read t.heap (rec_addr + vr_version) in
          if v > d.valid_ts then begin
            let n = Memory.Heap.unsafe_read t.heap (rec_addr + vr_nwords) in
            for k = 0 to n - 1 do
              if Memory.Heap.unsafe_read t.heap (rec_addr + vr_pairs + (2 * k)) = addr
              then begin
                value :=
                  Memory.Heap.unsafe_read t.heap (rec_addr + vr_pairs + (2 * k) + 1);
                found := true
              end
            done;
            walk (Memory.Heap.unsafe_read t.heap (rec_addr + vr_prev))
          end
          (* records at or below the snapshot: reconstruction complete *)
        end
      in
      ignore !found;
      if Vlock.version_of lv > d.valid_ts then walk t.hist.(idx);
      (* re-check the stripe did not move under us *)
      let lv2 = Runtime.Tmatomic.get t.locks.(idx) in
      if lv2 <> lv then stable_attempt ()
      else begin
        ignore (Runtime.Tmatomic.fetch_and_add t.snapshot_reads 1);
        !value
      end
    end
  in
  stable_attempt ()

let read_word t (d : Txdesc.t) addr =
  let costs = Runtime.Costs.get () in
  Stats.read t.stats ~tid:d.tid;
  if Hooks.inject_abort d then rollback t d Tx_signal.Killed;
  let idx = Memory.Stripe.index t.stripe addr in
  let s =
    if Wlog.is_empty d.wset then -1
    else begin
      Runtime.Exec.tick costs.log_lookup;
      Wlog.probe d.wset addr
    end
  in
  if s >= 0 then Wlog.slot_value d.wset s
  else if d.snapshot then snapshot_read t d addr idx
  else begin
    let lock = t.locks.(idx) in
    let lv1 = Runtime.Tmatomic.get lock in
    Runtime.Exec.tick costs.mem;
    let value = Memory.Heap.unsafe_read t.heap addr in
    let lv2 = Runtime.Tmatomic.get lock in
    if Vlock.is_locked lv1 || lv1 <> lv2 || Vlock.version_of lv1 > d.valid_ts
    then begin
      if d.allow_snapshot && Wlog.is_empty d.wset && not (Vlock.is_locked lv1)
      then begin
        (* switch to snapshot mode: prior reads were all <= the snapshot,
           and from now on the chains serve the consistent values *)
        d.snapshot <- true;
        snapshot_read t d addr idx
      end
      else rollback t d Tx_signal.Rw_validation
    end
    else begin
      Runtime.Exec.tick costs.log_append;
      Rset.push d.rset idx 0;
      value
    end
  end

let write_word t (d : Txdesc.t) addr value =
  let costs = Runtime.Costs.get () in
  Stats.write t.stats ~tid:d.tid;
  if Hooks.inject_abort d then rollback t d Tx_signal.Killed;
  if d.snapshot then begin
    (* writes are incompatible with serving old versions: restart as a
       plain update transaction *)
    d.allow_snapshot <- false;
    rollback t d Tx_signal.Rw_validation
  end;
  Runtime.Exec.tick costs.log_append;
  Wlog.replace d.wset addr value;
  let idx = Memory.Stripe.index t.stripe addr in
  ignore (Rset.add_unique d.wstripes idx 0 : bool)

(* Record the pre-commit values of the words we are about to overwrite in
   stripe [idx]; called with the stripe lock held. *)
let push_version_record t (d : Txdesc.t) idx ~new_version =
  let costs = Runtime.Costs.get () in
  let words =
    Wlog.fold
      (fun addr _ acc ->
        if Memory.Stripe.index t.stripe addr = idx then addr :: acc else acc)
      d.wset []
  in
  let n = List.length words in
  if n > 0 then begin
    let rec_addr = Memory.Heap.alloc t.heap (vr_pairs + (2 * n)) in
    Memory.Heap.unsafe_write t.heap (rec_addr + vr_version) new_version;
    Memory.Heap.unsafe_write t.heap (rec_addr + vr_prev) t.hist.(idx);
    Memory.Heap.unsafe_write t.heap (rec_addr + vr_nwords) n;
    List.iteri
      (fun k addr ->
        Runtime.Exec.tick (2 * costs.mem);
        Memory.Heap.unsafe_write t.heap (rec_addr + vr_pairs + (2 * k)) addr;
        Memory.Heap.unsafe_write t.heap
          (rec_addr + vr_pairs + (2 * k) + 1)
          (Memory.Heap.unsafe_read t.heap addr))
      words;
    t.hist.(idx) <- rec_addr;
    (* bound the chain: drop the tail once it exceeds max_chain *)
    if t.chain_len.(idx) >= t.max_chain then begin
      let rec cut r depth =
        if r > 0 then
          if depth = t.max_chain - 1 then
            Memory.Heap.unsafe_write t.heap (r + vr_prev) (-1)
          else cut (Memory.Heap.unsafe_read t.heap (r + vr_prev)) (depth + 1)
      in
      cut t.hist.(idx) 0
    end
    else t.chain_len.(idx) <- t.chain_len.(idx) + 1
  end

let commit t (d : Txdesc.t) =
  Hooks.commit_entry d;
  if Wlog.is_empty d.wset then
    Hooks.commit_done ~stats:t.stats ~cm:t.cm ~ser:t.ser ~heap:t.heap d
  else begin
    (* Commit gate: freeze the clock while an irrevocable transaction
       runs; the waiter holds no locks yet (lazy acquisition). *)
    Hooks.enter_update_commit ~stats:t.stats ~cm:t.cm ~ser:t.ser ~gate_check:Driver.nop_gate_check d;
    Hooks.inject_stretch d;
    let conflict = Vlock.acquire_wstripes ~locks:t.locks d in
    if conflict >= 0 then begin
      Hooks.stripe_conflict ~eid:t.eid ~stripe:conflict;
      rollback t d Tx_signal.Ww_conflict
    end;
    let wv, quiescent = Vlock.gv4_bump ~clock:t.clock ~rv:d.valid_ts in
    if (not quiescent) && not (Vlock.validate_rv ~locks:t.locks d) then begin
      Vlock.release_wstripes ~locks:t.locks d.wstripes d.acq_saved
        ~upto:(Rset.length d.wstripes);
      rollback t d Tx_signal.Rw_validation
    end;
    (* preserve the overwritten values, then write back *)
    Rset.iter
      (fun idx _ -> push_version_record t d idx ~new_version:wv)
      d.wstripes;
    Vlock.write_back ~heap:t.heap d;
    Vlock.publish_wstripes ~locks:t.locks d.wstripes ~version:wv;
    Hooks.commit_done ~stats:t.stats ~cm:t.cm ~ser:t.ser ~heap:t.heap d
  end

let start t (d : Txdesc.t) ~restart =
  Hooks.tx_begin ~eid:t.eid d;
  t.cm.on_start d.info ~restart;
  if not restart then d.allow_snapshot <- true;
  d.valid_ts <- Runtime.Tmatomic.get t.clock;
  Hooks.phase_other d.tid

(* Retry driver with graceful degradation: see [Kernel.Driver] for the
   escalation protocol.  Like TL2, the commit gate freezes the clock under
   the token, so an escalated attempt cannot fail in a simulated run. *)
let driver_ops t : Txdesc.t Driver.ops =
  {
    Driver.ser = t.ser;
    cm = t.cm;
    descs = t.descs;
    info = (fun (d : Txdesc.t) -> d.info);
    get_depth = (fun (d : Txdesc.t) -> d.depth);
    set_depth = (fun (d : Txdesc.t) n -> d.depth <- n);
    start = (fun d ~restart -> start t d ~restart);
    commit = (fun d -> commit t d);
    emergency = (fun d -> Hooks.emergency ~cm:t.cm ~ser:t.ser d);
    user_abort = (fun d -> rollback t d Tx_signal.Killed);
  }

let atomic t ~tid f = Driver.run (driver_ops t) ~tid ~irrevocable:false f
let atomic_irrevocable t ~tid f = Driver.run (driver_ops t) ~tid ~irrevocable:true f

(** Old-version reads served so far (ablation telemetry). *)
let snapshot_reads t = Runtime.Tmatomic.unsafe_get t.snapshot_reads

let engine ?config heap : Engine.t =
  let t = create ?config heap in
  let dops = driver_ops t in
  let ops =
    Package.ops_array ~heap ~descs:t.descs ~read:(read_word t)
      ~write:(write_word t) ~free:Txdesc.buffer_free
  in
  Package.make ~name ~heap ~stats:t.stats ~ops
    ~runner:
      { Package.run = (fun ~tid ~irrevocable f -> Driver.run dops ~tid ~irrevocable f) }
