(* RSTM-style engine (Marathe et al., TRANSACT 2006), the paper's
   design-space baseline.

   RSTM v3 is object-based and obstruction-free; what the paper exercises
   are its *policy* axes: eager vs lazy acquisition, visible vs invisible
   reads (the latter validated with a global commit-counter heuristic), and
   pluggable contention managers (Polka, Greedy, Serializer, timid).  This
   engine reproduces those axes over the shared word heap, treating each
   stripe as an "object" with an ownership record:

   - [owner]   : acquiring writer (0 = unowned) — eager mode CASes it at
                 first write, lazy mode at commit;
   - [version] : (counter value << 1) | busy-bit; busy while the committing
                 owner writes back;
   - [readers] : bitmask of visible readers.

   Per-access overheads are deliberately RSTM-like and higher than the
   word-based engines': every access walks a three-word ownership record,
   acquisition pays an object-clone cost, invisible reads revalidate the
   whole read set whenever the global commit counter moved, and visible
   reads CAS a shared reader bitmap (cache-line ping-pong under the cost
   model).  These are the effects behind the paper's Lee-TM and red-black
   tree results for RSTM (Figures 4 and 5).

   Conflicts consult the contention manager on BOTH read/write and
   write/write encounters (eager conflict detection on both axes), unlike
   SwissTM's reader-transparent w-locks.

   In kernel axes this engine owns the {eager,lazy} x {visible,invisible}
   quadrant with counter-heuristic validation and redo versioning; the
   bookkeeping lives in [Kernel.Hooks] / [Kernel.Driver]. *)

open Stm_intf
open Kernel

type acquire = Eager | Lazy
type visibility = Visible | Invisible

type config = {
  acquire : acquire;
  visibility : visibility;
  cm : Cm.Cm_intf.spec;
  granularity_words : int;
  table_bits : int;
  seed : int;
}

let default_config =
  {
    acquire = Eager;
    visibility = Invisible;
    cm = Cm.Cm_intf.Polka;
    granularity_words = 4;
    table_bits = 18;
    seed = 0xC0FFEE;
  }

type t = {
  heap : Memory.Heap.t;
  stripe : Memory.Stripe.t;
  owners : Runtime.Tmatomic.t array;
  versions : Runtime.Tmatomic.t array;
  readers : Runtime.Tmatomic.t array;
  counter : Runtime.Tmatomic.t;  (* global commit counter *)
  cm : Cm.Cm_intf.t;
  config : config;
  descs : Txdesc.t array;
  stats : Stats.t;
  eid : int;  (* observability engine id *)
  ser : Serial.t;  (* irrevocability token (escalation / explicit) *)
}

let name_of_config c =
  Printf.sprintf "rstm(%s,%s,%s)"
    (match c.acquire with Eager -> "eager" | Lazy -> "lazy")
    (match c.visibility with Visible -> "vis" | Invisible -> "inv")
    (Cm.Cm_intf.spec_name c.cm)

let busy lv = lv land 1 = 1
let version_of lv = lv lsr 1
let encode_version v = v lsl 1

let create ?(config = default_config) heap =
  let stripe =
    Memory.Stripe.create ~granularity_words:config.granularity_words
      ~table_bits:config.table_bits ()
  in
  let n = Memory.Stripe.table_size stripe in
  (* owner/version/readers form one RSTM object header: one cache line. *)
  let lines = Array.init n (fun _ -> Runtime.Tmatomic.fresh_line ()) in
  {
    heap;
    stripe;
    owners = Array.init n (fun i -> Runtime.Tmatomic.make_shared lines.(i) 0);
    versions = Array.init n (fun i -> Runtime.Tmatomic.make_shared lines.(i) 0);
    readers = Array.init n (fun i -> Runtime.Tmatomic.make_shared lines.(i) 0);
    counter = Runtime.Tmatomic.make 0;
    cm = Cm.Factory.make config.cm;
    config;
    descs = Driver.make_descs ~seed:config.seed ();
    stats = Stats.create ();
    eid = Obs.Metrics.register_engine (name_of_config config);
    ser = Serial.create ();
  }

(* Clear our visible-reader bits (commit and abort paths). *)
let retract_visible t (d : Txdesc.t) =
  Rset.iter
    (fun idx _ ->
      let r = t.readers.(idx) in
      let bit = 1 lsl d.tid in
      let rec clear () =
        let cur = Runtime.Tmatomic.get r in
        if cur land bit <> 0 then
          if not (Runtime.Tmatomic.cas r ~expect:cur ~replace:(cur land lnot bit))
          then clear ()
      in
      clear ())
    d.vreads

let release_owned t (d : Txdesc.t) =
  Ivec.iter
    (fun idx ->
      (* A rollback can land mid-commit (remote kill noticed while
         validating), after the busy bits were set: clear them before
         releasing ownership or readers spin on the stripe forever. *)
      let v = t.versions.(idx) in
      let lv = Runtime.Tmatomic.unsafe_get v in
      if busy lv then Runtime.Tmatomic.set v (lv land lnot 1);
      Runtime.Tmatomic.set t.owners.(idx) 0)
    d.acq_stripes

let rollback t (d : Txdesc.t) reason =
  Hooks.phase_commit d.tid;
  release_owned t d;
  retract_visible t d;
  Hooks.rollback ~stats:t.stats ~cm:t.cm ~ser:t.ser d ~reason

let check_kill t d =
  if Hooks.kill_due ~ser:t.ser d then rollback t d Tx_signal.Killed

(* Spin until a stripe stops being busy (a committer is writing back). *)
let wait_unbusy t (d : Txdesc.t) idx =
  let v = t.versions.(idx) in
  let rec go lv =
    if busy lv then begin
      Stats.wait t.stats ~tid:d.tid;
      check_kill t d;
      Runtime.Exec.pause ();
      go (Runtime.Tmatomic.get v)
    end
    else lv
  in
  go (Runtime.Tmatomic.get v)

(* Invisible-mode read-set validation.

   A stripe frozen (busy) by another committer is a commit-time r/w
   conflict: blindly waiting would deadlock two committers validating
   against each other's frozen stripes, so the contention manager
   arbitrates — either we roll back, or the victim gets killed and notices
   in its own wait loops. *)
let validate t (d : Txdesc.t) =
  let prof_prev = Hooks.phase_enter_validate d.tid in
  let costs = Runtime.Costs.get () in
  let n = Rset.length d.rset in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    Runtime.Exec.tick costs.validate_entry;
    let idx = Rset.key d.rset !i in
    let logged = Rset.value d.rset !i in
    let rec settle () =
      let lv = Runtime.Tmatomic.get t.versions.(idx) in
      if not (busy lv) then lv
      else begin
        let ov = Runtime.Tmatomic.get t.owners.(idx) in
        if ov = d.tid + 1 then lv
        else begin
          check_kill t d;
          (if ov <> 0 then
             let victim = (t.descs.(ov - 1)).info in
             match Hooks.cm_resolve ~stats:t.stats ~ser:t.ser ~cm:t.cm d ~victim
             with
             | Cm.Cm_intf.Abort_self -> rollback t d Tx_signal.Rw_validation
             | Cm.Cm_intf.Wait | Cm.Cm_intf.Killed_victim -> ());
          Stats.wait t.stats ~tid:d.tid;
          Runtime.Exec.pause ();
          settle ()
        end
      end
    in
    let lv = settle () in
    if version_of lv <> logged then ok := false;
    incr i
  done;
  Hooks.phase_restore d.tid prof_prev;
  !ok

(* Commit-counter heuristic: revalidate the read set only when some update
   transaction committed since we last looked. *)
let maybe_validate t (d : Txdesc.t) =
  if t.config.visibility = Invisible then begin
    let cc = Runtime.Tmatomic.get t.counter in
    if cc <> d.valid_ts then begin
      if not (validate t d) then rollback t d Tx_signal.Rw_validation;
      d.valid_ts <- cc
    end
  end

(* Resolve a conflict against the owner of [idx]; returns when the stripe
   is no longer owned by that victim (or aborts/unwinds). *)
let rec contend t (d : Txdesc.t) idx ~reason =
  let ov = Runtime.Tmatomic.get t.owners.(idx) in
  if ov <> 0 && ov <> d.tid + 1 then begin
    check_kill t d;
    Hooks.stripe_conflict ~eid:t.eid ~stripe:idx;
    let victim = (t.descs.(ov - 1)).info in
    match Hooks.cm_resolve ~stats:t.stats ~ser:t.ser ~cm:t.cm d ~victim with
    | Cm.Cm_intf.Abort_self -> rollback t d reason
    | Cm.Cm_intf.Wait | Cm.Cm_intf.Killed_victim ->
        Stats.wait t.stats ~tid:d.tid;
        Runtime.Exec.pause ();
        contend t d idx ~reason
  end

let read_word t (d : Txdesc.t) addr =
  let costs = Runtime.Costs.get () in
  Stats.read t.stats ~tid:d.tid;
  check_kill t d;
  let idx = Memory.Stripe.index t.stripe addr in
  if Runtime.Tmatomic.get t.owners.(idx) = d.tid + 1 then begin
    (* Our own acquired object: redo log, else stable memory. *)
    Runtime.Exec.tick costs.log_lookup;
    let s = Wlog.probe d.wset addr in
    if s >= 0 then Wlog.slot_value d.wset s
    else begin
      Runtime.Exec.tick costs.mem;
      Memory.Heap.unsafe_read t.heap addr
    end
  end
  else begin
    (* Lazy mode may have buffered a write without owning the object. *)
    let s =
      match t.config.acquire with
      | Lazy when not (Wlog.is_empty d.wset) ->
          Runtime.Exec.tick costs.log_lookup;
          Wlog.probe d.wset addr
      | _ -> -1
    in
    if s >= 0 then Wlog.slot_value d.wset s
    else begin
        (* Visible readers announce themselves FIRST: a writer acquiring the
           object afterwards is guaranteed to see the bit and drain us;
           writers that already drained are caught by the ownership check
           below.  Either side of the race is covered. *)
        (match t.config.visibility with
        | Visible ->
            if not (Rset.mem d.vreads idx) then begin
              let r = t.readers.(idx) in
              let bit = 1 lsl d.tid in
              let rec announce () =
                let cur = Runtime.Tmatomic.get r in
                if cur land bit = 0 then
                  if
                    not
                      (Runtime.Tmatomic.cas r ~expect:cur ~replace:(cur lor bit))
                  then announce ()
              in
              announce ();
              ignore (Rset.add_unique d.vreads idx 0 : bool)
            end
        | Invisible -> ());
        (* Eager conflict detection on the read/write axis: an owned object
           sends the reader to the contention manager. *)
        contend t d idx ~reason:Tx_signal.Rw_validation;
        let rec snapshot () =
          let lv = wait_unbusy t d idx in
          Runtime.Exec.tick costs.mem;
          let value = Memory.Heap.unsafe_read t.heap addr in
          let lv2 = Runtime.Tmatomic.get t.versions.(idx) in
          if lv2 <> lv then snapshot () else (version_of lv, value)
        in
        let version, value = snapshot () in
        d.info.accesses <- d.info.accesses + 1;
        (match t.config.visibility with
        | Invisible ->
            Runtime.Exec.tick costs.log_append;
            Rset.push d.rset idx version;
            maybe_validate t d
        | Visible -> ());
        value
    end
  end

(* Abort or wait out every visible reader of [idx] other than ourselves. *)
let drain_readers t (d : Txdesc.t) idx =
  let r = t.readers.(idx) in
  let mine = 1 lsl d.tid in
  let rec go () =
    let cur = Runtime.Tmatomic.get r in
    let others = cur land lnot mine in
    if others <> 0 then begin
      check_kill t d;
      let victim_tid =
        (* lowest set bit *)
        let b = others land -others in
        let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
        log2 b 0
      in
      let victim = (t.descs.(victim_tid)).info in
      (match Hooks.cm_resolve ~stats:t.stats ~ser:t.ser ~cm:t.cm d ~victim with
      | Cm.Cm_intf.Abort_self -> rollback t d Tx_signal.Rw_validation
      | Cm.Cm_intf.Wait | Cm.Cm_intf.Killed_victim ->
          Stats.wait t.stats ~tid:d.tid;
          Runtime.Exec.pause ());
      go ()
    end
  in
  go ()

(* Acquire ownership of [idx]; pays the RSTM object-clone cost. *)
let acquire_stripe t (d : Txdesc.t) idx =
  let costs = Runtime.Costs.get () in
  let o = t.owners.(idx) in
  let rec go () =
    contend t d idx ~reason:Tx_signal.Ww_conflict;
    if not (Runtime.Tmatomic.cas o ~expect:0 ~replace:(d.tid + 1)) then go ()
  in
  go ();
  Hooks.inject_stall d;
  Ivec.push d.acq_stripes idx;
  (* Clone the object into the speculative copy. *)
  Runtime.Exec.tick (costs.mem * Memory.Stripe.granularity_words t.stripe);
  if t.config.visibility = Visible then drain_readers t d idx;
  d.info.accesses <- d.info.accesses + 1;
  t.cm.on_write d.info ~writes:(Ivec.length d.acq_stripes)

let write_word t (d : Txdesc.t) addr value =
  let costs = Runtime.Costs.get () in
  Stats.write t.stats ~tid:d.tid;
  check_kill t d;
  let idx = Memory.Stripe.index t.stripe addr in
  (match t.config.acquire with
  | Eager ->
      if Runtime.Tmatomic.get t.owners.(idx) <> d.tid + 1 then
        acquire_stripe t d idx
  | Lazy -> ignore (Rset.add_unique d.wstripes idx 0 : bool));
  Runtime.Exec.tick costs.log_append;
  Wlog.replace d.wset addr value

let commit t (d : Txdesc.t) =
  Hooks.commit_entry d;
  check_kill t d;
  if Wlog.is_empty d.wset then begin
    (* Read-only commit: every read was validated by the counter heuristic;
       retract visible-reader bits and finish. *)
    retract_visible t d;
    Hooks.commit_done ~stats:t.stats ~cm:t.cm ~ser:t.ser ~heap:t.heap d
  end
  else begin
    (* Commit gate: while an irrevocable transaction runs, updates must not
       advance the commit counter.  The waiter may hold eagerly-acquired
       objects, so it polls its kill flag — the irrevocable transaction can
       abort it out of the wait. *)
    Hooks.enter_update_commit ~stats:t.stats ~cm:t.cm ~ser:t.ser
      ~gate_check:(fun () -> check_kill t d)
      d;
    Hooks.inject_stretch d;
    (* Lazy mode acquires its whole write set now. *)
    if t.config.acquire = Lazy then
      Rset.iter
        (fun idx _ ->
          if Runtime.Tmatomic.get t.owners.(idx) <> d.tid + 1 then
            acquire_stripe t d idx)
        d.wstripes;
    (* Freeze the acquired objects, publish the commit. *)
    Ivec.iter
      (fun idx ->
        let v = t.versions.(idx) in
        Runtime.Tmatomic.set v (Runtime.Tmatomic.get v lor 1))
      d.acq_stripes;
    let cc = Runtime.Tmatomic.incr_get t.counter in
    (if t.config.visibility = Invisible && not (validate t d) then begin
       (* Unfreeze with the old version, release, abort. *)
       Ivec.iter
         (fun idx ->
           let v = t.versions.(idx) in
           Runtime.Tmatomic.set v (Runtime.Tmatomic.get v land lnot 1))
         d.acq_stripes;
       rollback t d Tx_signal.Rw_validation
     end);
    let costs = Runtime.Costs.get () in
    Wlog.iter
      (fun addr value ->
        Runtime.Exec.tick costs.mem;
        Memory.Heap.unsafe_write t.heap addr value)
      d.wset;
    Ivec.iter
      (fun idx ->
        Runtime.Tmatomic.set t.versions.(idx) (encode_version cc);
        Runtime.Tmatomic.set t.owners.(idx) 0)
      d.acq_stripes;
    retract_visible t d;
    Hooks.commit_done ~stats:t.stats ~cm:t.cm ~ser:t.ser ~heap:t.heap d
  end

let start t (d : Txdesc.t) ~restart =
  Hooks.tx_begin ~eid:t.eid d;
  t.cm.on_start d.info ~restart;
  d.valid_ts <- Runtime.Tmatomic.get t.counter;
  Hooks.phase_other d.tid

let emergency_release t (d : Txdesc.t) =
  release_owned t d;
  retract_visible t d;
  Hooks.emergency ~cm:t.cm ~ser:t.ser d

(* Retry driver with graceful degradation: see [Kernel.Driver] for the
   escalation protocol.  RSTM's managers can kill, so the token holder
   runs with [cm_ts = 0] and wins every encounter. *)
let driver_ops t : Txdesc.t Driver.ops =
  {
    Driver.ser = t.ser;
    cm = t.cm;
    descs = t.descs;
    info = (fun (d : Txdesc.t) -> d.info);
    get_depth = (fun (d : Txdesc.t) -> d.depth);
    set_depth = (fun (d : Txdesc.t) n -> d.depth <- n);
    start = (fun d ~restart -> start t d ~restart);
    commit = (fun d -> commit t d);
    emergency = (fun d -> emergency_release t d);
    user_abort = (fun d -> rollback t d Tx_signal.Killed);
  }

let check_tid tid = Engine.check_tid_limit ~engine:"rstm" ~limit:62 tid

let atomic t ~tid f =
  check_tid tid;
  Driver.run (driver_ops t) ~tid ~irrevocable:false f

let atomic_irrevocable t ~tid f =
  check_tid tid;
  Driver.run (driver_ops t) ~tid ~irrevocable:true f

let engine ?config heap : Engine.t =
  let t = create ?config heap in
  let dops = driver_ops t in
  let ops =
    Package.ops_array ~heap ~descs:t.descs ~read:(read_word t)
      ~write:(write_word t) ~free:Txdesc.buffer_free
  in
  Package.make ~name:(name_of_config t.config) ~heap ~stats:t.stats ~ops
    ~runner:
      {
        Package.run =
          (fun ~tid ~irrevocable f ->
            check_tid tid;
            Driver.run dops ~tid ~irrevocable f);
      }
