(* Transactional sorted singly-linked list (set of ints) over the word heap.

   Used by STAMP kernels that keep small ordered collections (yada's bad-
   triangle work list, vacation's per-customer reservation lists).
   Node layout: [key; value; next].  Header word holds the first node. *)

open Stm_intf.Engine

let f_key = 0
let f_val = 1
let f_next = 2
let node_words = 3

type t = { head : int }

let create heap =
  let head = Memory.Heap.alloc heap 1 in
  Memory.Heap.write heap head 0;
  { head }

(** [insert tx t k v] adds [k] keeping the list sorted; returns [false] if
    [k] was already present (value untouched). *)
let insert tx t k v =
  let link prev node =
    let fresh = alloc tx node_words in
    write tx (fresh + f_key) k;
    write tx (fresh + f_val) v;
    write tx (fresh + f_next) node;
    (if prev = 0 then write tx t.head fresh
     else write tx (prev + f_next) fresh);
    true
  in
  (* One key read per node: the old shape re-read [node + f_key] on the
     equality arm, doubling the read-set footprint (and false-conflict
     surface) of every traversal step. *)
  let rec go prev node =
    if node = 0 then link prev node
    else
      let nk = read tx (node + f_key) in
      if nk > k then link prev node
      else if nk = k then false
      else go node (read tx (node + f_next))
  in
  go 0 (read tx t.head)

let find tx t k =
  let rec go node =
    if node = 0 then None
    else
      let nk = read tx (node + f_key) in
      if nk = k then Some (read tx (node + f_val))
      else if nk > k then None
      else go (read tx (node + f_next))
  in
  go (read tx t.head)

let mem tx t k = find tx t k <> None

let remove tx t k =
  let rec go prev node =
    if node = 0 then false
    else
      let nk = read tx (node + f_key) in
      if nk = k then begin
        let next = read tx (node + f_next) in
        (if prev = 0 then write tx t.head next
         else write tx (prev + f_next) next);
        (* Unlinked nodes go back to the heap if the commit sticks:
           buffered transactional free (epoch limbo when armed). *)
        free tx node node_words;
        true
      end
      else if nk > k then false
      else go node (read tx (node + f_next))
  in
  go 0 (read tx t.head)

(** Remove and return the smallest key, if any. *)
let pop_min tx t =
  let node = read tx t.head in
  if node = 0 then None
  else begin
    write tx t.head (read tx (node + f_next));
    let kv = (read tx (node + f_key), read tx (node + f_val)) in
    free tx node node_words;
    Some kv
  end

let length tx t =
  let rec go n node = if node = 0 then n else go (n + 1) (read tx (node + f_next)) in
  go 0 (read tx t.head)

let to_list_quiescent heap t =
  let rec go node acc =
    if node = 0 then List.rev acc
    else
      go
        (Memory.Heap.read heap (node + f_next))
        ((Memory.Heap.read heap (node + f_key), Memory.Heap.read heap (node + f_val))
        :: acc)
  in
  go (Memory.Heap.read heap t.head) []
