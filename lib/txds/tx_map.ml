(* Boosted transactional hash map (DESIGN.md §15).

   Same physical layout as {!Tx_hashmap} — a power-of-two bucket array of
   singly linked [key; value; next] nodes — but conflict detection is
   semantic: every operation acquires the abstract lock of its key's
   bucket (held to commit), applies its effect with direct heap access,
   and logs the inverse operation.  Operations on different buckets
   commute and run fully in parallel; word-level STM would instead abort
   on bucket-array false sharing and version-clock conflicts.

   Because the bucket lock covers every key that hashes to it, no other
   transaction can observe an uncommitted node — readers of the bucket
   block on the same lock — so nodes need no commit tags.

   The [Word] submodule is the composition fallback: the same structure
   driven through the engine's word-transactional ops, for transactions
   that must mix map accesses with arbitrary word reads/writes under
   engine-level conflict detection.  A given structure instance must be
   driven through one mode per concurrent phase: boosted operations
   bypass the engine's locks, so mixing modes on live data loses
   isolation between the two populations. *)

let f_key = 0
let f_val = 1
let f_next = 2
let node_words = 3

type t = { h : Tx_hashmap.t; locks : Boost.table }

let create heap ~buckets =
  { h = Tx_hashmap.create heap ~buckets; locks = Boost.make_table ~slots:buckets }

let bucket_addr t k = Tx_hashmap.bucket_addr t.h k

(* Acquire the abstract lock for [k]'s bucket; the table and the bucket
   array are sized equally, so [key_slot] and [Tx_hashmap.slot] agree. *)
let lock_key tx t k = Boost.acquire_key tx t.locks k

let rec find_node tx node k =
  if node = 0 then 0
  else if Boost.hread tx (node + f_key) = k then node
  else find_node tx (Boost.hread tx (node + f_next)) k

let find t tx k =
  Boost.op_entry tx;
  lock_key tx t k;
  let n = find_node tx (Boost.hread tx (bucket_addr t k)) k in
  if n = 0 then None else Some (Boost.hread tx (n + f_val))

let mem t tx k =
  Boost.op_entry tx;
  lock_key tx t k;
  find_node tx (Boost.hread tx (bucket_addr t k)) k <> 0

(** [add t tx k v] inserts or updates; returns [true] if [k] was new.
    Inverse: restore the old value, or unlink the fresh node and free it
    (the node was never visible to another transaction — the bucket lock
    blocked them — so the free needs no grace period beyond the heap's
    own epoch limbo). *)
let add t tx k v =
  Boost.op_entry tx;
  lock_key tx t k;
  let b = bucket_addr t k in
  let head = Boost.hread tx b in
  let n = find_node tx head k in
  if n <> 0 then begin
    let old = Boost.hread tx (n + f_val) in
    if old <> v then begin
      Boost.hwrite tx (n + f_val) v;
      Boost.log_undo tx (fun () -> Boost.hwrite tx (n + f_val) old)
    end;
    false
  end
  else begin
    let node = Boost.halloc tx node_words in
    Boost.hwrite tx (node + f_key) k;
    Boost.hwrite tx (node + f_val) v;
    Boost.hwrite tx (node + f_next) head;
    Boost.hwrite tx b node;
    Boost.log_undo tx (fun () ->
        Boost.hwrite tx b head;
        Memory.Heap.free tx.heap node node_words);
    true
  end

(** [remove t tx k] unlinks [k]'s node; returns [true] if present.
    Inverse: relink the node where it was; the free is deferred to
    commit. *)
let remove t tx k =
  Boost.op_entry tx;
  lock_key tx t k;
  let b = bucket_addr t k in
  let rec go prev node =
    if node = 0 then false
    else if Boost.hread tx (node + f_key) = k then begin
      let next = Boost.hread tx (node + f_next) in
      let link = if prev = 0 then b else prev + f_next in
      Boost.hwrite tx link next;
      Boost.log_undo tx (fun () -> Boost.hwrite tx link node);
      Boost.defer_free tx node node_words;
      true
    end
    else go node (Boost.hread tx (node + f_next))
  in
  go 0 (Boost.hread tx b)

(* --- word-transactional fallback (composition) -------------------------- *)

module Word = struct
  let find t ops k = Tx_hashmap.find t.h ops k
  let mem t ops k = Tx_hashmap.mem t.h ops k
  let add t ops k v = Tx_hashmap.add t.h ops k v
  let remove t ops k = Tx_hashmap.remove t.h ops k
  let fold t ops f init = Tx_hashmap.fold t.h ops f init
  let cardinal t ops = Tx_hashmap.cardinal t.h ops
end

(* --- quiescent verification --------------------------------------------- *)

let bindings_quiescent t heap = Tx_hashmap.bindings_quiescent t.h heap
