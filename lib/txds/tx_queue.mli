(** Transactional bounded FIFO queue (ring buffer) over the word heap.
    Its head/tail words are a deliberate contention hot spot — the shape
    of STAMP intruder's shared packet queue (paper Figure 11). *)

type t

val create : Memory.Heap.t -> capacity:int -> t

val length : Stm_intf.Engine.tx_ops -> t -> int
val is_empty : Stm_intf.Engine.tx_ops -> t -> bool

val push : Stm_intf.Engine.tx_ops -> t -> int -> bool
(** [false] when full. *)

val pop : Stm_intf.Engine.tx_ops -> t -> int option

val push_quiescent : Memory.Heap.t -> t -> int -> bool
(** Non-transactional fill for benchmark setup. *)

(** Boosted two-lock linked queue: push and pop acquire the endpoint
    abstract locks (held to commit), so producers and consumers of a
    non-empty queue run in parallel where the ring above serializes them
    on the counter words.  Must be driven from inside {!Boost.atomic}. *)
module Linked : sig
  type t

  val create : Memory.Heap.t -> t

  val push : t -> Boost.tx -> int -> unit
  val pop : t -> Boost.tx -> int option

  val is_empty : t -> Boost.tx -> bool
  (** Observing emptiness acquires both endpoint locks (a concurrent push
      invalidates the answer). *)

  val to_list_quiescent : Memory.Heap.t -> t -> int list
end
