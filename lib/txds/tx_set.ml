(* Boosted transactional int set: a unit-valued {!Tx_map}.

   Same abstract-lock discipline — one lock per bucket, held to commit,
   inverse operations logged — with the set-flavored API the STAMP
   kernels want (membership tables, visited sets). *)

type t = { m : Tx_map.t }

let create heap ~buckets = { m = Tx_map.create heap ~buckets }
let mem t tx k = Tx_map.mem t.m tx k

(** [add t tx k] returns [true] iff [k] was absent. *)
let add t tx k = Tx_map.add t.m tx k 0

(** [remove t tx k] returns [true] iff [k] was present. *)
let remove t tx k = Tx_map.remove t.m tx k

module Word = struct
  let mem t ops k = Tx_map.Word.mem t.m ops k
  let add t ops k = Tx_map.Word.add t.m ops k 0
  let remove t ops k = Tx_map.Word.remove t.m ops k
  let cardinal t ops = Tx_map.Word.cardinal t.m ops
end

let elements_quiescent t heap =
  List.sort compare (List.map fst (Tx_map.bindings_quiescent t.m heap))
