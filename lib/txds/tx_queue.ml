(* Transactional bounded FIFO queue (ring buffer) over the word heap.

   STAMP's intruder dequeues packet fragments from exactly such a shared
   queue; its head/tail words are the benchmark's cache hot spot
   (paper Figure 11). Layout: [head; tail; capacity; slots...]. *)

open Stm_intf.Engine

let f_head = 0
let f_tail = 1
let f_cap = 2
let slots = 3

type t = { base : int }

let create heap ~capacity =
  if capacity <= 0 then invalid_arg "Tx_queue.create";
  let base = Memory.Heap.alloc heap (slots + capacity) in
  Memory.Heap.write heap (base + f_head) 0;
  Memory.Heap.write heap (base + f_tail) 0;
  Memory.Heap.write heap (base + f_cap) capacity;
  { base }

(* The one place ring indices wrap; push/pop/push_quiescent all go
   through it rather than repeating the [mod] logic. *)
let slot_addr t ~cap i = t.base + slots + (i mod cap)

let length tx t =
  read tx (t.base + f_tail) - read tx (t.base + f_head)

let is_empty tx t = length tx t = 0

(** [push tx t v] enqueues [v]; returns [false] when full. *)
let push tx t v =
  let cap = read tx (t.base + f_cap) in
  let head = read tx (t.base + f_head) in
  let tail = read tx (t.base + f_tail) in
  if tail - head >= cap then false
  else begin
    write tx (slot_addr t ~cap tail) v;
    write tx (t.base + f_tail) (tail + 1);
    true
  end

(** [pop tx t] dequeues the oldest element, if any. *)
let pop tx t =
  let head = read tx (t.base + f_head) in
  let tail = read tx (t.base + f_tail) in
  if tail = head then None
  else begin
    let cap = read tx (t.base + f_cap) in
    let v = read tx (slot_addr t ~cap head) in
    write tx (t.base + f_head) (head + 1);
    Some v
  end

(* --- boosted linked queue (DESIGN.md §15) ------------------------------- *)

(* Two-lock Michael–Scott queue with a permanent dummy node, boosted:
   [push] acquires the tail endpoint's abstract lock, [pop] the head's
   (both held to commit), so pushers and poppers of a non-empty queue run
   in parallel — the word-based ring above instead serializes them on the
   head/tail counter words (the paper's Figure 11 hot spot).

   Nodes are [value; next; tag]; the tag is [tid+1] until the pushing
   transaction commits, 0 after, so a popper that reaches an uncommitted
   node waits its pusher out (bounded, then kill, then retry) instead of
   returning a dirty value.  A pop that observes emptiness acquires BOTH
   endpoint locks: "the queue was empty" is invalidated by any concurrent
   push, so the observation must serialize against pushers too.

   Inverses: push is undone by restoring the tail pointer and the old
   tail's next link (and freeing the node); pop is undone by restoring the
   head pointer.  Pop frees the outgoing dummy at commit.

   The word-based composition fallback for queues is the ring buffer
   above — same FIFO contract under engine-level conflict detection. *)

module Linked = struct
  let f_qval = 0
  let f_qnext = 1
  let f_qtag = 2
  let qnode_words = 3
  let l_head = 0  (* abstract-lock slot: pop endpoint *)
  let l_tail = 1  (* abstract-lock slot: push endpoint *)

  type t = { base : int; locks : Boost.table }
  (* [base] = head-pointer word, [base+1] = tail-pointer word. *)

  let create heap =
    let base = Memory.Heap.alloc heap 2 in
    let dummy = Memory.Heap.alloc heap qnode_words in
    Memory.Heap.write heap (dummy + f_qval) 0;
    Memory.Heap.write heap (dummy + f_qnext) 0;
    Memory.Heap.write heap (dummy + f_qtag) 0;
    Memory.Heap.write heap base dummy;
    Memory.Heap.write heap (base + 1) dummy;
    { base; locks = Boost.make_table ~slots:2 }

  let push t tx v =
    Boost.op_entry tx;
    Boost.acquire tx t.locks l_tail;
    let node = Boost.halloc tx qnode_words in
    Boost.hwrite tx (node + f_qval) v;
    Boost.hwrite tx (node + f_qnext) 0;
    Boost.hwrite tx (node + f_qtag) (tx.tid + 1);
    let tl = Boost.hread tx (t.base + 1) in
    Boost.hwrite tx (tl + f_qnext) node;
    Boost.hwrite tx (t.base + 1) node;
    Boost.log_undo tx (fun () ->
        Boost.hwrite tx (t.base + 1) tl;
        Boost.hwrite tx (tl + f_qnext) 0;
        Memory.Heap.free tx.heap node qnode_words);
    Boost.on_commit tx (fun () -> Memory.Heap.write tx.heap (node + f_qtag) 0)

  let pop t tx =
    Boost.op_entry tx;
    Boost.acquire tx t.locks l_head;
    let rec attempt spins =
      let dummy = Boost.hread tx t.base in
      let first = Boost.hread tx (dummy + f_qnext) in
      if first = 0 then begin
        (* Empty so far; the observation only holds if no push is in
           flight, so take the tail lock too and re-check. *)
        Boost.acquire tx t.locks l_tail;
        if Boost.hread tx (dummy + f_qnext) = 0 then None else attempt spins
      end
      else
        let tag = Boost.hread tx (first + f_qtag) in
        if tag <> 0 && tag <> tx.tid + 1 then
          (* Front element is a foreign uncommitted push: its fate decides
             our answer. *)
          attempt (Boost.wait_step tx ~owner:(tag - 1) spins)
        else begin
          let v = Boost.hread tx (first + f_qval) in
          Boost.hwrite tx t.base first;  (* [first] becomes the new dummy *)
          Boost.log_undo tx (fun () -> Boost.hwrite tx t.base dummy);
          Boost.defer_free tx dummy qnode_words;
          Some v
        end
    in
    attempt 0

  let is_empty t tx =
    Boost.op_entry tx;
    Boost.acquire tx t.locks l_head;
    let rec attempt spins =
      let dummy = Boost.hread tx t.base in
      let first = Boost.hread tx (dummy + f_qnext) in
      if first = 0 then begin
        Boost.acquire tx t.locks l_tail;
        Boost.hread tx (dummy + f_qnext) = 0 || attempt spins
      end
      else
        let tag = Boost.hread tx (first + f_qtag) in
        if tag <> 0 && tag <> tx.tid + 1 then
          attempt (Boost.wait_step tx ~owner:(tag - 1) spins)
        else false
    in
    attempt 0

  let to_list_quiescent heap t =
    let rec go node acc =
      if node = 0 then List.rev acc
      else
        go
          (Memory.Heap.read heap (node + f_qnext))
          (Memory.Heap.read heap (node + f_qval) :: acc)
    in
    let dummy = Memory.Heap.read heap t.base in
    go (Memory.Heap.read heap (dummy + f_qnext)) []
end

(* Non-transactional fill for benchmark setup. *)
let push_quiescent heap t v =
  let cap = Memory.Heap.read heap (t.base + f_cap) in
  let head = Memory.Heap.read heap (t.base + f_head) in
  let tail = Memory.Heap.read heap (t.base + f_tail) in
  if tail - head >= cap then false
  else begin
    Memory.Heap.write heap (slot_addr t ~cap tail) v;
    Memory.Heap.write heap (t.base + f_tail) (tail + 1);
    true
  end
