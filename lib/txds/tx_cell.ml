(* Typed single-word transactional cells and fixed arrays.

   Thin sugar over raw addresses for application code (examples, user
   programs): allocation at setup time, all access through [Engine.tx_ops].
   Counters get read-modify-write helpers. *)

open Stm_intf.Engine

type t = { addr : int }

let create heap ~init =
  let addr = Memory.Heap.alloc heap 1 in
  Memory.Heap.write heap addr init;
  { addr }

let get tx c = read tx c.addr
let set tx c v = write tx c.addr v
let update tx c f = write tx c.addr (f (read tx c.addr))
let incr tx c = update tx c (fun v -> v + 1)
let add tx c n = update tx c (fun v -> v + n)

(** Non-transactional peek for quiescent verification. *)
let peek heap c = Memory.Heap.read heap c.addr

module Array = struct
  type t = { base : int; length : int }

  let create heap ~length ~init =
    if length <= 0 then invalid_arg "Tx_cell.Array.create";
    let base = Memory.Heap.alloc heap length in
    for i = 0 to length - 1 do
      Memory.Heap.write heap (base + i) init
    done;
    { base; length }

  let length t = t.length

  let check t i =
    if i < 0 || i >= t.length then invalid_arg "Tx_cell.Array: index out of bounds"

  let get tx t i =
    check t i;
    read tx (t.base + i)

  let set tx t i v =
    check t i;
    write tx (t.base + i) v

  (* One bounds check, one address computation (get+set did both twice). *)
  let update tx t i f =
    check t i;
    let a = t.base + i in
    write tx a (f (read tx a))

  (** Transactional fold over the whole array (one consistent snapshot). *)
  let fold tx t f init =
    let acc = ref init in
    for i = 0 to t.length - 1 do
      acc := f !acc (read tx (t.base + i))
    done;
    !acc

  let peek heap t i =
    check t i;
    Memory.Heap.read heap (t.base + i)
end
