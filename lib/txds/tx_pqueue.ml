(* Boosted transactional priority queue: a skew heap with a semantic
   min-lock (DESIGN.md §15).

   Physical shape: heap nodes [key; value; left; right; tag] hanging off a
   root-pointer word; melds are the classic skew-heap child-swapping
   merge.  A brief *structural* spinlock protects the shape during one
   operation and is never held across an abort point; it is not part of
   conflict detection.

   Semantic conflict detection is asymmetric, which is the whole point:

   - [pop_min] acquires the structure's single abstract *min-lock* (held
     to commit) and maintains a session *watermark* — the largest key it
     has popped so far ([max_int] once it has observed emptiness, reset on
     each fresh acquisition).
   - [insert k] conflicts with an in-flight popper only when [k] is below
     the watermark (the popper's results could have included [k]); inserts
     above the watermark — the common case for workloads that pop small
     keys and insert larger ones, e.g. discrete-event loops — proceed in
     parallel with poppers and with each other, where word-level STM
     serializes every insert against every pop on the root.

   Uncommitted inserts are visible in the tree (melds are eager), so nodes
   carry a tag word: [tid+1] until the inserting transaction commits, 0
   after.  A popper whose minimum is a foreign uncommitted node waits
   boundedly, then escalates through the CM (kill, then self-retry).

   Inserts are *buffered*: each producer melds into a private sub-heap
   (its slot of [subs], guarded by a per-slot brief lock), so concurrent
   producers share no cache line at all — a single structural lock would
   otherwise convoy them on coherence traffic even though their melds
   never logically conflict.  A popper drains the sub-heaps into the main
   tree inside its critical section, atomically with min-selection and
   the watermark update, and the conflict check lives in the drain: a
   slot whose minimum is below the session watermark stays buffered, and
   its inserters linearize after the whole session (they provably overlap
   it — the session's first drain runs with watermark [min_int] and takes
   everything).  Producers therefore never wait on a popping session and
   never touch the structural lock; only the session holder's own inserts
   go straight to the main tree, preserving its sequential semantics.

   Inverses: insert is undone by deleting the node by address (melding its
   children into its place); pop is undone by re-melding the popped node
   with zeroed children (its former children were melded into the tree at
   pop time and stay there).  Pop's free of the node is deferred to
   commit.

   The [Word] submodule drives the same layout through the engine's
   word-transactional ops for composition; as with every boosted
   structure, one mode per structure instance per concurrent phase. *)

let f_key = 0
let f_val = 1
let f_left = 2
let f_right = 3
let f_tag = 4
let node_words = 5

(* Producer sub-heap slots: enough that typical thread counts map
   injectively (tid land (sub_slots - 1)); sharing a slot is only a
   performance loss, never a correctness one. *)
let sub_slots = 8

type t = {
  root : int;  (** heap word holding the root node address (0 = empty) *)
  subs : int;  (** base of [sub_slots] heap words: per-slot sub-heap roots *)
  sublocks : Runtime.Tmatomic.t array;  (** brief lock per sub-heap slot *)
  minlock : Boost.table;  (** single-slot abstract lock for pop_min *)
  slock : Runtime.Tmatomic.t;  (** brief structural lock (main tree) *)
  mutable watermark : int;
      (** largest key popped by the current min-lock holder; only
          meaningful while the min-lock is held (reset on fresh acquire) *)
}

let create heap =
  let root = Memory.Heap.alloc heap 1 in
  Memory.Heap.write heap root 0;
  let subs = Memory.Heap.alloc heap sub_slots in
  for s = 0 to sub_slots - 1 do
    Memory.Heap.write heap (subs + s) 0
  done;
  {
    root;
    subs;
    sublocks = Array.init sub_slots (fun _ -> Runtime.Tmatomic.make 0);
    minlock = Boost.make_table ~slots:1;
    slock = Runtime.Tmatomic.make 0;
    watermark = min_int;
  }

let slot_of_tid tid = tid land (sub_slots - 1)

(* Skew-heap meld with direct (charged) heap access; caller holds the
   structural lock. *)
let rec meld tx a b =
  if a = 0 then b
  else if b = 0 then a
  else
    let ka = Boost.hread tx (a + f_key) in
    let kb = Boost.hread tx (b + f_key) in
    let top, rest = if ka <= kb then (a, b) else (b, a) in
    let l = Boost.hread tx (top + f_left) in
    let r = Boost.hread tx (top + f_right) in
    Boost.hwrite tx (top + f_right) l;
    Boost.hwrite tx (top + f_left) (meld tx r rest);
    top

(* Unlink [node] (found by address) from the tree hanging off [link] and
   meld its children into its place; caller holds the lock covering that
   tree.  Returns [true] if found. *)
let delete_from tx link node =
  let rec go link =
    let cur = Boost.hread tx link in
    if cur = 0 then false
    else if cur = node then begin
      let repl =
        meld tx (Boost.hread tx (cur + f_left)) (Boost.hread tx (cur + f_right))
      in
      Boost.hwrite tx link repl;
      true
    end
    else go (cur + f_left) || go (cur + f_right)
  in
  go link

(* Remove our [node] from its slot (slot lock held briefly) or, when a
   drain already moved it, from the main tree.  Caller holds the main
   structural lock — main before sub is the global lock order, and
   holding main across both searches closes the mid-transfer window
   where a draining popper has the node in neither tree. *)
let delete_anywhere_locked tx t node =
  let s = slot_of_tid tx.Boost.tid in
  Boost.lock_brief t.sublocks.(s) ~tid:tx.Boost.tid;
  let in_sub = delete_from tx (t.subs + s) node in
  Boost.unlock_brief t.sublocks.(s);
  in_sub || delete_from tx t.root node

(* Meld sub-heaps into the main tree; the popper runs this inside its
   critical section so drain, min-selection and watermark update are one
   atomic step.  The conflict check lives HERE, not in [insert]: a slot
   whose minimum (its sub-root key — a skew heap keeps its min at the
   root) is below the session watermark is left buffered.  That is
   serializable: the session's first drain runs with w = min_int and
   takes everything, so a skipped node was necessarily published by a
   transaction overlapping this session, and an overlapping insert may
   linearize after the whole session — the session simply never saw it.
   Every melded slot has all keys >= w, so no past answer of the session
   is invalidated and the watermark can never pass a visible key.

   The empty-slot probe is a plain heap read — the slot lock is only
   taken when there is something to take.  Caller holds the main
   structural lock (main before sub, the global order). *)
let drain_subs_locked tx t =
  for s = 0 to sub_slots - 1 do
    if Boost.hread tx (t.subs + s) <> 0 then begin
      Boost.lock_brief t.sublocks.(s) ~tid:tx.Boost.tid;
      let r = Boost.hread tx (t.subs + s) in
      if r <> 0 && Boost.hread tx (r + f_key) >= t.watermark then begin
        Boost.hwrite tx (t.subs + s) 0;
        Boost.hwrite tx t.root (meld tx (Boost.hread tx t.root) r)
      end;
      Boost.unlock_brief t.sublocks.(s)
    end
  done

(* Acquire the min-lock if we do not hold it yet; a fresh acquisition
   starts a new popping session, so the watermark resets. *)
let acquire_min tx t =
  if not (Boost.holds tx t.minlock 0) then begin
    Boost.acquire tx t.minlock 0;
    Boost.lock_brief t.slock ~tid:tx.tid;
    t.watermark <- min_int;
    Boost.unlock_brief t.slock
  end

(** [insert t tx k v] adds the binding (duplicates allowed — multiset). *)
let insert t tx k v =
  Boost.op_entry tx;
  let node = Boost.halloc tx node_words in
  Boost.hwrite tx (node + f_key) k;
  Boost.hwrite tx (node + f_val) v;
  Boost.hwrite tx (node + f_left) 0;
  Boost.hwrite tx (node + f_right) 0;
  Boost.hwrite tx (node + f_tag) (tx.tid + 1);
  let melded = ref false in
  (* The undo must free the node even when a Retry fires between the
     allocation and the meld, so it is logged before the meld attempt. *)
  Boost.log_undo tx (fun () ->
      if !melded then begin
        Boost.lock_brief t.slock ~tid:tx.tid;
        ignore (delete_anywhere_locked tx t node : bool);
        Boost.unlock_brief t.slock
      end;
      Memory.Heap.free tx.heap node node_words);
  (if Boost.owner_of t.minlock 0 = tx.tid then begin
     (* We ARE the popping session: meld straight into the main tree
        under the structural lock, so our own later pops see the node
        even below our own watermark (sequential semantics within one
        transaction).  This also keeps every sub-heap slot free of the
        session holder's nodes, so the drain skip rule never has to
        split a slot between own and foreign nodes. *)
     Boost.lock_brief t.slock ~tid:tx.tid;
     Boost.hwrite tx t.root (meld tx (Boost.hread tx t.root) node);
     melded := true;
     Boost.unlock_brief t.slock
   end
   else begin
     (* Buffered publish: meld into our private slot — no shared line
        with the other producers, and none with a popper either until it
        drains.  No conflict check and no waiting: an in-flight popping
        session whose watermark already passed [k] simply leaves this
        slot buffered (see [drain_subs_locked]) and this transaction
        linearizes after it. *)
     let s = slot_of_tid tx.tid in
     Boost.lock_brief t.sublocks.(s) ~tid:tx.tid;
     Boost.hwrite tx (t.subs + s)
       (meld tx (Boost.hread tx (t.subs + s)) node);
     melded := true;
     Boost.unlock_brief t.sublocks.(s)
   end);
  Boost.on_commit tx (fun () -> Memory.Heap.write tx.heap (node + f_tag) 0)

(** [pop_min t tx] removes and returns the smallest binding, if any. *)
let pop_min t tx =
  Boost.op_entry tx;
  acquire_min tx t;
  let rec attempt spins =
    Boost.lock_brief t.slock ~tid:tx.tid;
    (* Drain inside the critical section: buffered inserts become visible
       atomically with the selection and watermark update below, which is
       what makes the insert fast path's post-publish check exact. *)
    drain_subs_locked tx t;
    let node = Boost.hread tx t.root in
    if node = 0 then begin
      (* Observed emptiness: every later insert conflicts. *)
      t.watermark <- max_int;
      Boost.unlock_brief t.slock;
      None
    end
    else
      let tag = Boost.hread tx (node + f_tag) in
      if tag <> 0 && tag <> tx.tid + 1 then begin
        (* The minimum is a foreign uncommitted insert: its fate decides
           our answer, so wait it out (bounded, then kill, then retry). *)
        Boost.unlock_brief t.slock;
        attempt (Boost.wait_step tx ~owner:(tag - 1) spins)
      end
      else begin
        let k = Boost.hread tx (node + f_key) in
        let v = Boost.hread tx (node + f_val) in
        let l = Boost.hread tx (node + f_left) in
        let r = Boost.hread tx (node + f_right) in
        Boost.hwrite tx t.root (meld tx l r);
        if k > t.watermark then t.watermark <- k;
        Boost.unlock_brief t.slock;
        Boost.log_undo tx (fun () ->
            Boost.lock_brief t.slock ~tid:tx.tid;
            Boost.hwrite tx (node + f_left) 0;
            Boost.hwrite tx (node + f_right) 0;
            Boost.hwrite tx t.root (meld tx (Boost.hread tx t.root) node);
            Boost.unlock_brief t.slock);
        Boost.defer_free tx node node_words;
        Some (k, v)
      end
  in
  attempt 0

(* --- word-transactional fallback (composition) -------------------------- *)

module Word = struct
  open Stm_intf.Engine

  let rec meld ops a b =
    if a = 0 then b
    else if b = 0 then a
    else
      let ka = read ops (a + f_key) in
      let kb = read ops (b + f_key) in
      let top, rest = if ka <= kb then (a, b) else (b, a) in
      let l = read ops (top + f_left) in
      let r = read ops (top + f_right) in
      write ops (top + f_right) l;
      write ops (top + f_left) (meld ops r rest);
      top

  let insert t ops k v =
    let node = alloc ops node_words in
    write ops (node + f_key) k;
    write ops (node + f_val) v;
    write ops (node + f_left) 0;
    write ops (node + f_right) 0;
    write ops (node + f_tag) 0;
    write ops t.root (meld ops (read ops t.root) node)

  (* Fold any boosted-phase sub-heap leftovers into the main tree so a
     word phase following a boosted phase sees every element.  In a
     word-only instance this costs [sub_slots] reads of zero words. *)
  let drain_subs t ops =
    for s = 0 to sub_slots - 1 do
      let r = read ops (t.subs + s) in
      if r <> 0 then begin
        write ops (t.subs + s) 0;
        write ops t.root (meld ops (read ops t.root) r)
      end
    done

  let pop_min t ops =
    drain_subs t ops;
    let node = read ops t.root in
    if node = 0 then None
    else begin
      let k = read ops (node + f_key) in
      let v = read ops (node + f_val) in
      write ops t.root
        (meld ops (read ops (node + f_left)) (read ops (node + f_right)));
      free ops node node_words;
      Some (k, v)
    end
end

(* --- quiescent verification --------------------------------------------- *)

let to_sorted_list_quiescent t heap =
  let rec go node acc =
    if node = 0 then acc
    else
      go
        (Memory.Heap.read heap (node + f_left))
        (go
           (Memory.Heap.read heap (node + f_right))
           ((Memory.Heap.read heap (node + f_key),
             Memory.Heap.read heap (node + f_val))
           :: acc))
  in
  let acc = ref (go (Memory.Heap.read heap t.root) []) in
  for s = 0 to sub_slots - 1 do
    acc := go (Memory.Heap.read heap (t.subs + s)) !acc
  done;
  List.sort compare !acc

let size_quiescent t heap = List.length (to_sorted_list_quiescent t heap)
