(* Transactional boosting core (DESIGN.md §15; Herlihy & Koskinen,
   PPoPP'08; Proust).

   A boosted structure detects conflicts *semantically*: each operation
   acquires an abstract lock covering the operations it does not commute
   with (per-key locks for map lookups/updates, endpoint locks for queue
   push/pop, a min-lock for priority-queue pop_min), applies its effect
   eagerly with direct heap access, and logs the *inverse operation* in a
   LIFO undo log.  Abstract locks are two-phase — held until the enclosing
   transaction commits or aborts — so non-commuting operations of live
   transactions serialize, while commuting ones (different keys, opposite
   queue ends) run in parallel that word-level conflict detection would
   serialize on the physical representation.

   Layering contract with the engines (all plumbed in this PR):

   - every boosted operation runs inside an engine transaction started by
     {!atomic}, which must be the *outermost* atomic block of the thread;
   - abort paths: engine rollbacks call {!Tx_signal.cleanup}, which replays
     the undo log and releases the abstract locks *before* the CM back-off,
     so no abstract lock is ever held across a sleep or park;
   - semantic conflicts that cannot be resolved by waiting raise
     {!Tx_signal.Retry}; the retry drivers route it through the engine's
     own rollback, so semantic aborts feed the same CM back-off and
     escalation budget as word-level ones (a transaction that keeps losing
     abstract-lock fights eventually runs irrevocably and wins);
   - arbitration goes through the contention machinery: a spinning
     acquirer aims {!Cm.Cm_intf.request_kill} at the owner's in-flight
     transaction (published in {!Cm.Cm_intf.current}), and every boosted
     operation — and the acquire spin itself — polls its own kill flag;
   - lazy engines' commit gates poll kills for threads flagged in
     {!Tx_signal.boost_busy}, because a boosted waiter parked there still
     holds abstract locks even though it holds no word locks.

   Direct heap accesses are charged [Costs.mem] per word through
   {!hread}/{!hwrite} so boosted-vs-plain benchmark comparisons stay fair:
   boosting saves validation and logging, not memory traffic. *)

open Stm_intf

(* --- counters (observability) ------------------------------------------ *)

let ops_count = ref 0
let acquires = ref 0
let acquire_spins = ref 0
let kills_sent = ref 0
let retries = ref 0
let undos_replayed = ref 0
let commit_frees = ref 0

let () =
  Obs.Metrics.register_gauge "boost_ops" (fun () -> !ops_count);
  Obs.Metrics.register_gauge "boost_acquires" (fun () -> !acquires);
  Obs.Metrics.register_gauge "boost_acquire_spins" (fun () -> !acquire_spins);
  Obs.Metrics.register_gauge "boost_kills" (fun () -> !kills_sent);
  Obs.Metrics.register_gauge "boost_retries" (fun () -> !retries);
  Obs.Metrics.register_gauge "boost_undos" (fun () -> !undos_replayed);
  Obs.Metrics.register_gauge "boost_commit_frees" (fun () -> !commit_frees)

(* --- abstract-lock tables ---------------------------------------------- *)

(* One atomic cell per slot; 0 = free, [tid + 1] = owner.  The cells are
   [Tmatomic], so lock traffic pays modelled coherence costs like any
   engine lock table. *)
type table = { cells : Runtime.Tmatomic.t array; mask : int }

let make_table ~slots =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Boost.make_table: slots must be a power of two";
  { cells = Array.init slots (fun _ -> Runtime.Tmatomic.make 0); mask = slots - 1 }

(* Same multiplicative hash as [Tx_hashmap] so a map's lock table and its
   bucket array agree on slot assignment when sized equally. *)
let key_slot t k = (k * 0x9E3779B1) lsr 11 land t.mask

(* --- per-thread frames -------------------------------------------------- *)

type frame = {
  tid : int;
  mutable active : bool;  (** inside a {!atomic} body *)
  mutable held : Runtime.Tmatomic.t list;  (** abstract locks we own *)
  mutable undo : (unit -> unit) list;  (** inverse ops, LIFO *)
  mutable commits : (unit -> unit) list;  (** deferred effects, reversed *)
  mutable frees : (int * int) list;  (** (addr, words) freed at commit *)
}

let frames =
  Array.init Stats.max_threads (fun tid ->
      { tid; active = false; held = []; undo = []; commits = []; frees = [] })

(* Abort-path unwind, installed as [Tx_signal.cleanup_hook]: replay the
   inverse operations newest-first, then release the abstract locks.  The
   frame stays [active] — the engine is about to re-run the body.
   Idempotent: an empty frame is a no-op, so the hook is safe on every
   rollback of every engine once armed. *)
let unwind tid =
  let fr = frames.(tid) in
  List.iter
    (fun inv ->
      incr undos_replayed;
      inv ())
    fr.undo;
  fr.undo <- [];
  fr.commits <- [];
  fr.frees <- [];
  List.iter (fun cell -> Runtime.Tmatomic.set cell 0) fr.held;
  fr.held <- []

let armed = ref false

let arm () =
  if not !armed then begin
    armed := true;
    Tx_signal.cleanup_hook := unwind;
    Tx_signal.cleanup_on := true
  end

(* --- transaction handle ------------------------------------------------- *)

(* What a boosted operation needs: identity, the heap for direct access,
   and the engine's word ops so boosted structures compose with plain
   word-transactional reads/writes in the same transaction. *)
type tx = { tid : int; heap : Memory.Heap.t; ops : Engine.tx_ops }

(* Direct heap access, charged like an engine's in-place access. *)
let[@inline] hread tx addr =
  Runtime.Exec.tick (Runtime.Costs.get ()).Runtime.Costs.mem;
  Memory.Heap.read tx.heap addr

let[@inline] hwrite tx addr v =
  Runtime.Exec.tick (Runtime.Costs.get ()).Runtime.Costs.mem;
  Memory.Heap.write tx.heap addr v

let halloc tx n = Memory.Heap.alloc tx.heap n

(* --- semantic logs ------------------------------------------------------ *)

let log_undo tx inv =
  let fr = frames.(tx.tid) in
  fr.undo <- inv :: fr.undo

let on_commit tx eff =
  let fr = frames.(tx.tid) in
  fr.commits <- eff :: fr.commits

let defer_free tx addr words =
  let fr = frames.(tx.tid) in
  fr.frees <- (addr, words) :: fr.frees

(* --- conflict arbitration ----------------------------------------------- *)

(* Poll our own kill flag (local line, cost-free) and the fault injector.
   The irrevocability-token holder is exempt from both: it must win. *)
let[@inline] self_abort_due ~tid =
  !Runtime.Inject.exempt <> tid
  && (Cm.Cm_intf.kill_requested Cm.Cm_intf.current.(tid)
     || (!Runtime.Inject.on && Runtime.Inject.spurious_abort ~tid))

(* Entry check of every boosted operation: honor a pending kill (or an
   injected fault) by retrying through the engine rollback, which replays
   our undo log and releases our abstract locks. *)
let op_entry tx =
  incr ops_count;
  if self_abort_due ~tid:tx.tid then begin
    incr retries;
    Tx_signal.retry ()
  end

(* Spin budget before aiming a kill at the owner; total budget before
   giving up and retrying ourselves.  Escalation guarantees progress:
   a transaction that keeps retrying eventually runs irrevocably, where
   it is exempt from kills and wins every arbitration. *)
let kill_after = 32
let retry_after = 256

(* Kill on power-of-two spin counts only (32, 64, 128): a victim that was
   already killed needs time to roll back, sit out its CM backoff and
   re-execute; re-killing it every spin iteration re-arms its kill flag
   just as it recovers and melts an isolated conflict into a kill storm
   (observed as a 45-kill episode on the pqueue bench before spacing). *)
let kill_due spins = spins >= kill_after && spins land (spins - 1) = 0

let acquire tx (t : table) slot =
  let tid = tx.tid in
  let cell = t.cells.(slot land t.mask) in
  let me = tid + 1 in
  let fr = frames.(tid) in
  let rec go spins =
    let v = Runtime.Tmatomic.get cell in
    if v = me then ()  (* reentrant: already ours, held to commit *)
    else if v = 0 && Runtime.Tmatomic.cas cell ~expect:0 ~replace:me then begin
      incr acquires;
      fr.held <- cell :: fr.held
    end
    else begin
      (* Owned by another transaction: wait, then fight through the CM. *)
      incr acquire_spins;
      if self_abort_due ~tid then begin
        incr retries;
        Tx_signal.retry ()
      end;
      if spins >= retry_after then begin
        incr retries;
        Tx_signal.retry ()
      end;
      (if kill_due spins && v > 0 then
         let owner = v - 1 in
         if !Runtime.Inject.exempt <> owner then begin
           incr kills_sent;
           Cm.Cm_intf.request_kill Cm.Cm_intf.current.(owner)
         end);
      Runtime.Exec.pause ();
      go (spins + 1)
    end
  in
  go 0

let acquire_key tx t k = acquire tx t (key_slot t k)

(* One step of a bounded wait on a foreign *in-flight* operation that is
   not an abstract lock (e.g. an uncommitted node tag): poll our own kill
   flag, aim a kill at [owner] after [kill_after] steps, give up and
   retry ourselves after [retry_after].  Returns the new step count. *)
let wait_step tx ~owner spins =
  incr acquire_spins;
  if self_abort_due ~tid:tx.tid || spins >= retry_after then begin
    incr retries;
    Tx_signal.retry ()
  end;
  (if kill_due spins && owner >= 0 && !Runtime.Inject.exempt <> owner then begin
     incr kills_sent;
     Cm.Cm_intf.request_kill Cm.Cm_intf.current.(owner)
   end);
  Runtime.Exec.pause ();
  spins + 1

(* Does this thread's transaction currently own the slot's lock? *)
let holds tx (t : table) slot =
  Runtime.Tmatomic.unsafe_get t.cells.(slot land t.mask) = tx.tid + 1

(* Current owner tid of a slot, or -1 when free (uncharged peek). *)
let owner_of (t : table) slot =
  Runtime.Tmatomic.unsafe_get t.cells.(slot land t.mask) - 1

(* --- brief structural locks --------------------------------------------- *)

(* A short spinlock protecting a structure's physical shape during one
   operation — NOT two-phase, released before the operation returns, and
   never held across an abort point (no [retry], no [op_entry], no engine
   call inside the critical section).

   The spin backs off exponentially between probes.  The lock line is the
   hottest word of a boosted structure, and the coherence model charges
   queuing penalties to lines whose misses arrive back-to-back
   (tmatomic.ml): a tight TTAS loop turns every handoff into a string of
   amplified misses — for holder and waiter both, since the holder's
   release also misses once a waiter has probed — and convoys the whole
   structure.  Spacing the probes keeps the line cool; the cap stays well
   under the coherence queue window so a free lock is still picked up
   promptly. *)
let lock_brief (cell : Runtime.Tmatomic.t) ~tid =
  let me = tid + 1 in
  let rec go backoff =
    if Runtime.Tmatomic.get cell = 0
       && Runtime.Tmatomic.cas cell ~expect:0 ~replace:me
    then ()
    else begin
      for _ = 1 to backoff do
        Runtime.Exec.pause ()
      done;
      go (min (backoff * 2) 32)
    end
  in
  go 1

let unlock_brief (cell : Runtime.Tmatomic.t) = Runtime.Tmatomic.set cell 0

(* --- commit flush ------------------------------------------------------- *)

(* Runs after the engine transaction committed: the semantic effects are
   now certain.  Deferred effects run in registration order, freed blocks
   go to the heap (epoch limbo when the reclaimer is armed) while the
   abstract locks are still held, then the locks release. *)
let commit_flush heap fr =
  List.iter (fun eff -> eff ()) (List.rev fr.commits);
  fr.commits <- [];
  List.iter
    (fun (addr, words) ->
      incr commit_frees;
      Memory.Heap.free heap addr words)
    fr.frees;
  fr.frees <- [];
  fr.undo <- [];
  List.iter (fun cell -> Runtime.Tmatomic.set cell 0) fr.held;
  fr.held <- []

(* --- the boosted atomic block ------------------------------------------- *)

(* Must be the thread's *outermost* atomic block: the abstract locks and
   the undo log unwind with the whole engine transaction, so a boosted
   block nested inside a plain [Engine.atomic] would release semantic
   state that an enclosing abort still depends on.  Nested [atomic] calls
   through *this* function flat-nest like the engines do. *)
let atomic eng ~tid f =
  arm ();
  let fr = frames.(tid) in
  if fr.active then Engine.atomic eng ~tid (fun ops -> f { tid; heap = Engine.heap eng; ops })
  else begin
    fr.active <- true;
    Tx_signal.boost_busy.(tid) <- true;
    match
      Engine.atomic eng ~tid (fun ops -> f { tid; heap = Engine.heap eng; ops })
    with
    | v ->
        commit_flush (Engine.heap eng) fr;
        fr.active <- false;
        Tx_signal.boost_busy.(tid) <- false;
        v
    | exception e ->
        (* Foreign exception: the engine ran its emergency release (which
           does not call the cleanup hook); unwind the semantic layer here
           so a user bug cannot leave abstract locks held. *)
        unwind tid;
        fr.active <- false;
        Tx_signal.boost_busy.(tid) <- false;
        raise e
  end
