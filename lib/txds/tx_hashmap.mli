(** Transactional chained hash map over the word heap (int keys/values).

    Fixed power-of-two bucket count, no resizing — C benchmarks size their
    tables up front the same way. *)

type t

val node_words : int

val create : Memory.Heap.t -> buckets:int -> t
(** Non-transactional allocation (setup time). *)

val slot : t -> int -> int
(** Bucket index of a key; exposed so {!Tx_map}'s abstract-lock table
    (sized like the bucket array) agrees on slot assignment. *)

val bucket_addr : t -> int -> int
(** Heap address of a key's bucket head word. *)

val find : t -> Stm_intf.Engine.tx_ops -> int -> int option
val mem : t -> Stm_intf.Engine.tx_ops -> int -> bool

val add : t -> Stm_intf.Engine.tx_ops -> int -> int -> bool
(** Insert or update; [true] iff the key was new. *)

val remove : t -> Stm_intf.Engine.tx_ops -> int -> bool

val fold : t -> Stm_intf.Engine.tx_ops -> ('a -> int -> int -> 'a) -> 'a -> 'a
(** Full transactional scan. *)

val cardinal : t -> Stm_intf.Engine.tx_ops -> int

val bindings_quiescent : t -> Memory.Heap.t -> (int * int) list
(** Non-transactional dump for verification (quiescent state only). *)
