(* Transactional chained hash map over the word heap.

   Used as STMBench7's id indexes, vacation's relation tables and genome's
   segment table.  Buckets are heap words holding the head of a singly
   linked list of nodes [key; value; next].

   The bucket count is fixed at creation (power of two); there is no
   resizing — the C benchmarks size their tables up front the same way. *)

open Stm_intf.Engine

let f_key = 0
let f_val = 1
let f_next = 2
let node_words = 3

type t = { buckets : int; base : int }

(** Non-transactional allocation of an empty table (setup time). *)
let create heap ~buckets =
  if buckets <= 0 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Tx_hashmap.create: buckets must be a power of two";
  let base = Memory.Heap.alloc heap buckets in
  for i = 0 to buckets - 1 do
    Memory.Heap.write heap (base + i) 0
  done;
  { buckets; base }

(* Knuth multiplicative hash; keys are arbitrary ints. *)
let slot t k = (k * 0x9E3779B1) lsr 11 land (t.buckets - 1)

let bucket_addr t k = t.base + slot t k

let rec find_node tx node k =
  if node = 0 then 0
  else if read tx (node + f_key) = k then node
  else find_node tx (read tx (node + f_next)) k

(** [find t tx k] returns the value bound to [k], if any. *)
let find t tx k =
  let n = find_node tx (read tx (bucket_addr t k)) k in
  if n = 0 then None else Some (read tx (n + f_val))

let mem t tx k = find_node tx (read tx (bucket_addr t k)) k <> 0

(** [add t tx k v] inserts or updates; returns [true] if [k] was new. *)
let add t tx k v =
  let b = bucket_addr t k in
  let head = read tx b in
  let n = find_node tx head k in
  if n <> 0 then begin
    write tx (n + f_val) v;
    false
  end
  else begin
    let node = alloc tx node_words in
    write tx (node + f_key) k;
    write tx (node + f_val) v;
    write tx (node + f_next) head;
    write tx b node;
    true
  end

(** [remove t tx k] unlinks [k]'s node; returns [true] if present. *)
let remove t tx k =
  let b = bucket_addr t k in
  let rec go prev node =
    if node = 0 then false
    else if read tx (node + f_key) = k then begin
      let next = read tx (node + f_next) in
      (if prev = 0 then write tx b next else write tx (prev + f_next) next);
      free tx node node_words;
      true
    end
    else go node (read tx (node + f_next))
  in
  go 0 (read tx b)

(** Fold over all bindings (transactional; reads every bucket). *)
let fold t tx f init =
  let acc = ref init in
  for i = 0 to t.buckets - 1 do
    let rec go node =
      if node <> 0 then begin
        acc := f !acc (read tx (node + f_key)) (read tx (node + f_val));
        go (read tx (node + f_next))
      end
    in
    go (read tx (t.base + i))
  done;
  !acc

(** Number of bindings (transactional full scan). *)
let cardinal t tx = fold t tx (fun n _ _ -> n + 1) 0

(* Non-transactional iteration for test verification (quiescent only). *)
let bindings_quiescent t heap =
  let out = ref [] in
  for i = 0 to t.buckets - 1 do
    let rec go node =
      if node <> 0 then begin
        out :=
          (Memory.Heap.read heap (node + f_key), Memory.Heap.read heap (node + f_val))
          :: !out;
        go (Memory.Heap.read heap (node + f_next))
      end
    in
    go (Memory.Heap.read heap (t.base + i))
  done;
  !out
