(* TL2 (Dice, Shalev, Shavit — DISC 2006), the paper's lazy baseline.

   Word-based, commit-time locking (lazy acquisition), invisible reads
   against a global version clock, redo logging:

   - one versioned lock per stripe: unlocked = version << 1;
     locked = ((owner+1) << 1) | 1;
   - [start]: sample the clock into [rv];
   - [read]: redo-log lookup, then lock/word/lock double read; abort if the
     stripe is locked or its version exceeds [rv] (TL2 has *no* timestamp
     extension — that is one of the differences from TinySTM/SwissTM);
   - [write]: buffer in the redo log only — write/write conflicts stay
     undetected until commit, which is precisely the behaviour the paper
     blames for TL2's wasted work on long transactions (Figure 6a);
   - [commit]: acquire all write locks (abort on any conflict — timid),
     bump the clock GV4-style, validate the read set, write back, release
     with the new version. *)

open Stm_intf

type config = {
  granularity_words : int;
  table_bits : int;
  seed : int;
  cm : Cm.Cm_intf.spec;
      (* rollback/throttle policy only: TL2 stays timid at commit-time
         acquisition (it never kills), but the manager owns the retry
         back-off, the adaptive throttle and the escalation budget *)
}

let default_config =
  { granularity_words = 4; table_bits = 18; seed = 0xC0FFEE; cm = Cm.Cm_intf.Timid }

type desc = {
  tid : int;
  info : Cm.Cm_intf.txinfo;  (* used for back-off bookkeeping *)
  mutable rv : int;  (* read version: clock sample at start *)
  read_stripes : Ivec.t;
  wset : Wlog.t;  (* redo log: addr -> value *)
  wstripes : Ivec.t;  (* unique stripes written, in first-write order *)
  wstripe_seen : Wlog.t;  (* stripe membership for [wstripes] *)
  acq_saved : Ivec.t;  (* lock values saved during commit acquisition *)
  acq_version : Wlog.t;
      (* stripe -> version at commit-time acquisition; a read-log entry for
         a stripe we locked ourselves validates against this *)
  mutable depth : int;
  mutable start_cycles : int;  (* virtual time at attempt start *)
}

type t = {
  heap : Memory.Heap.t;
  stripe : Memory.Stripe.t;
  locks : Runtime.Tmatomic.t array;
  clock : Runtime.Tmatomic.t;
  descs : desc array;
  stats : Stats.t;
  eid : int;  (* metrics-registry engine id *)
  cm : Cm.Cm_intf.t;
  ser : Serial.t;  (* irrevocability token (escalation / explicit) *)
}

let name = "tl2"

let unlocked_of_version v = v lsl 1
let is_locked lv = lv land 1 = 1
let version_of lv = lv lsr 1
let locked_by tid = ((tid + 1) lsl 1) lor 1

let create ?(config = default_config) heap =
  let stripe =
    Memory.Stripe.create ~granularity_words:config.granularity_words
      ~table_bits:config.table_bits ()
  in
  {
    heap;
    stripe;
    locks =
      Array.init (Memory.Stripe.table_size stripe) (fun _ ->
          Runtime.Tmatomic.make 0);
    clock = Runtime.Tmatomic.make 0;
    descs =
      Array.init Stats.max_threads (fun tid ->
          {
            tid;
            info = Cm.Cm_intf.make_txinfo ~tid ~seed:config.seed;
            rv = 0;
            read_stripes = Ivec.create ();
            wset = Wlog.create ();
            wstripes = Ivec.create ();
            wstripe_seen = Wlog.create ();
            acq_saved = Ivec.create ();
            acq_version = Wlog.create ~bits:4 ();
            depth = 0;
            start_cycles = 0;
          });
    stats = Stats.create ();
    eid = Obs.Metrics.register_engine name;
    cm = Cm.Factory.make config.cm;
    ser = Serial.create ();
  }

let clear_logs d =
  Ivec.clear d.read_stripes;
  Wlog.clear d.wset;
  Ivec.clear d.wstripes;
  Wlog.clear d.wstripe_seen;
  Wlog.clear d.acq_version;
  Ivec.clear d.acq_saved

let rollback t d reason =
  if !Runtime.Exec.prof_on then
    Runtime.Exec.set_phase d.tid Runtime.Exec.ph_commit;
  if !Trace.enabled then Trace.on_abort ~tid:d.tid ~reason;
  Stats.abort t.stats ~tid:d.tid reason;
  Stats.wasted t.stats ~tid:d.tid
    ~cycles:(max 0 (Runtime.Exec.now () - d.start_cycles));
  if !Obs.Metrics.on then Obs.Metrics.on_tx_abort ~tid:d.tid ~reason;
  Serial.exit_commit t.ser ~tid:d.tid;
  clear_logs d;
  Runtime.Exec.tick (Runtime.Costs.get ()).tx_end;
  (* The manager owns the retry back-off (the factory Timid reproduces the
     stock TL2 linear policy); harvest its wait count into [Stats]. *)
  let b0 = d.info.Cm.Cm_intf.backoffs in
  t.cm.on_rollback d.info;
  let db = d.info.Cm.Cm_intf.backoffs - b0 in
  if db > 0 then Stats.backoff t.stats ~tid:d.tid ~n:db;
  Tx_signal.abort ()

let read_word t d addr =
  let costs = Runtime.Costs.get () in
  Stats.read t.stats ~tid:d.tid;
  if !Runtime.Inject.on && Runtime.Inject.spurious_abort ~tid:d.tid then
    rollback t d Tx_signal.Killed;
  let idx = Memory.Stripe.index t.stripe addr in
  (* Redo-log lookup; free for read-only transactions, and [Wlog]'s bloom
     filter makes the common miss cheap for update ones (TL2's own
     write-set Bloom filter trick). *)
  let s =
    if Wlog.is_empty d.wset then -1
    else begin
      Runtime.Exec.tick costs.log_lookup;
      Wlog.probe d.wset addr
    end
  in
  if s >= 0 then Wlog.slot_value d.wset s
  else begin
    let lock = t.locks.(idx) in
    let lv1 = Runtime.Tmatomic.get lock in
    Runtime.Exec.tick costs.mem;
    let value = Memory.Heap.unsafe_read t.heap addr in
    let lv2 = Runtime.Tmatomic.get lock in
    if is_locked lv1 || lv1 <> lv2 || version_of lv1 > d.rv then
      (* Locked or moved past our snapshot: TL2 aborts (no extension). *)
      rollback t d Tx_signal.Rw_validation;
    Runtime.Exec.tick costs.log_append;
    Ivec.push d.read_stripes idx;
    value
  end

let write_word t d addr value =
  let costs = Runtime.Costs.get () in
  Stats.write t.stats ~tid:d.tid;
  if !Runtime.Inject.on && Runtime.Inject.spurious_abort ~tid:d.tid then
    rollback t d Tx_signal.Killed;
  Runtime.Exec.tick costs.log_append;
  Wlog.replace d.wset addr value;
  let idx = Memory.Stripe.index t.stripe addr in
  if not (Wlog.mem d.wstripe_seen idx) then begin
    Wlog.replace d.wstripe_seen idx 1;
    Ivec.push d.wstripes idx
  end

let release_acquired t d ~upto =
  for i = 0 to upto - 1 do
    Runtime.Tmatomic.set
      t.locks.(Ivec.unsafe_get d.wstripes i)
      (Ivec.unsafe_get d.acq_saved i)
  done

(* GV4 clock bump: try to CAS the sampled value forward; on failure another
   committer already advanced the clock and its value can be reused, saving
   a second RMW on the hot line.  Returns the commit version and whether the
   read set provably cannot have been invalidated: that is the case exactly
   when OUR CAS advanced the clock from OUR start value [rv] (so no update
   transaction committed in between).  A reused value equal to rv+1 gives no
   such guarantee — some other transaction committed with it. *)
let gv4_bump t ~rv =
  let cur = Runtime.Tmatomic.get t.clock in
  if Runtime.Tmatomic.cas t.clock ~expect:cur ~replace:(cur + 1) then
    (cur + 1, cur = rv)
  else (Runtime.Tmatomic.get t.clock, false)

let commit t d =
  if !Runtime.Exec.prof_on then
    Runtime.Exec.set_phase d.tid Runtime.Exec.ph_commit;
  let costs = Runtime.Costs.get () in
  Runtime.Exec.tick costs.tx_end;
  if Wlog.is_empty d.wset then begin
    (* Read-only: every read was validated against [rv]; nothing to do. *)
    if !Trace.enabled then Trace.on_commit ~tid:d.tid;
    Stats.commit t.stats ~tid:d.tid;
    if !Obs.Metrics.on then Obs.Metrics.on_tx_commit ~tid:d.tid;
    clear_logs d;
    t.cm.on_commit d.info;
    Serial.release t.ser ~tid:d.tid
  end
  else begin
    (* Commit gate: an irrevocable transaction must see a frozen clock.
       The waiter holds no locks yet (lazy acquisition), so a plain spin
       is deadlock-free and needs no kill polling. *)
    if Serial.held_by_other t.ser ~tid:d.tid then
      Serial.gate t.ser ~tid:d.tid ~check:(fun () -> ());
    Serial.enter_commit t.ser ~tid:d.tid;
    if !Obs.Metrics.on then Obs.Metrics.on_commit_start ~tid:d.tid;
    if !Runtime.Inject.on then Runtime.Inject.stretch ~tid:d.tid;
    (* Acquire every write lock; any conflict aborts (timid). *)
    let n = Ivec.length d.wstripes in
    let i = ref 0 in
    (try
       while !i < n do
         let idx = Ivec.unsafe_get d.wstripes !i in
         let lock = t.locks.(idx) in
         let lv = Runtime.Tmatomic.get lock in
         if is_locked lv then raise Exit
         else if not (Runtime.Tmatomic.cas lock ~expect:lv ~replace:(locked_by d.tid))
         then raise Exit
         else begin
           if !Runtime.Inject.on then Runtime.Inject.stall ~tid:d.tid;
           Ivec.push d.acq_saved lv;
           Wlog.replace d.acq_version idx (version_of lv);
           incr i
         end
       done
     with Exit ->
       (* [!i] indexes the stripe whose lock we lost — the conflict site. *)
       if !Obs.Metrics.on then
         Obs.Metrics.on_stripe_conflict ~eid:t.eid
           ~stripe:(Ivec.unsafe_get d.wstripes !i);
       release_acquired t d ~upto:!i;
       rollback t d Tx_signal.Ww_conflict);
    let wv, quiescent = gv4_bump t ~rv:d.rv in
    (* Validate the read set unless nobody else committed since start. *)
    if not quiescent then begin
      if !Runtime.Exec.prof_on then
        Runtime.Exec.set_phase d.tid Runtime.Exec.ph_validate;
      let ok = ref true in
      let j = ref 0 in
      let nr = Ivec.length d.read_stripes in
      while !ok && !j < nr do
        Runtime.Exec.tick costs.validate_entry;
        let idx = Ivec.unsafe_get d.read_stripes !j in
        let lv = Runtime.Tmatomic.get t.locks.(idx) in
        (if is_locked lv then begin
           if lv <> locked_by d.tid then ok := false
           else begin
             (* We hold this lock for commit: the read is valid only if the
                version at acquisition had not passed our snapshot. *)
             let s = Wlog.probe d.acq_version idx in
             if s < 0 || Wlog.slot_value d.acq_version s > d.rv then
               ok := false
           end
         end
         else if version_of lv > d.rv then ok := false);
        incr j
      done;
      if not !ok then begin
        release_acquired t d ~upto:n;
        rollback t d Tx_signal.Rw_validation
      end;
      if !Runtime.Exec.prof_on then
        Runtime.Exec.set_phase d.tid Runtime.Exec.ph_commit
    end;
    Wlog.iter
      (fun addr value ->
        Runtime.Exec.tick costs.mem;
        Memory.Heap.unsafe_write t.heap addr value)
      d.wset;
    Ivec.iter
      (fun idx -> Runtime.Tmatomic.set t.locks.(idx) (unlocked_of_version wv))
      d.wstripes;
    if !Trace.enabled then Trace.on_commit ~tid:d.tid;
    Stats.commit t.stats ~tid:d.tid;
    if !Obs.Metrics.on then Obs.Metrics.on_tx_commit ~tid:d.tid;
    clear_logs d;
    t.cm.on_commit d.info;
    Serial.exit_commit t.ser ~tid:d.tid;
    Serial.release t.ser ~tid:d.tid
  end

let start t d ~restart =
  (* Begin is recorded BEFORE the snapshot is taken (Trace contract). *)
  if !Trace.enabled then Trace.on_begin ~tid:d.tid;
  if !Runtime.Exec.prof_on then
    Runtime.Exec.set_phase d.tid Runtime.Exec.ph_commit;
  d.start_cycles <- Runtime.Exec.now ();
  if !Obs.Metrics.on then Obs.Metrics.on_tx_begin ~eid:t.eid ~tid:d.tid;
  Runtime.Exec.tick (Runtime.Costs.get ()).tx_begin;
  clear_logs d;
  t.cm.on_start d.info ~restart;
  d.rv <- Runtime.Tmatomic.get t.clock;
  if !Runtime.Exec.prof_on then
    Runtime.Exec.set_phase d.tid Runtime.Exec.ph_other

let emergency_release t d =
  Serial.exit_commit t.ser ~tid:d.tid;
  Serial.release t.ser ~tid:d.tid;
  t.cm.on_quit d.info;
  clear_logs d;
  d.depth <- 0

(* Retry driver with graceful degradation: see the SwissTM driver for the
   escalation protocol.  Under the irrevocability token TL2's attempt
   cannot fail in a simulated run — the commit gate freezes the clock, so
   no read validation can observe a newer version and no commit-time lock
   can be held by anyone else once in-flight commits drained. *)
let run t ~tid ~irrevocable f =
  let d = t.descs.(tid) in
  if d.depth > 0 then begin
    d.depth <- d.depth + 1;
    Fun.protect ~finally:(fun () -> d.depth <- d.depth - 1) (fun () -> f d)
  end
  else
    let rec attempt ~restart =
      if
        (irrevocable
        || d.info.Cm.Cm_intf.succ_aborts >= t.cm.Cm.Cm_intf.escalate_after)
        && not (Serial.mine t.ser ~tid)
      then begin
        if !Obs.Metrics.on then Obs.Metrics.on_escalation ~tid;
        Serial.acquire t.ser ~tid;
        Serial.drain t.ser ~tid
      end;
      let escalated = Serial.mine t.ser ~tid in
      t.cm.pre_attempt d.info ~escalated;
      if (not escalated) && Serial.held_by_other t.ser ~tid then
        Serial.gate t.ser ~tid ~check:(fun () -> ());
      start t d ~restart;
      if escalated then d.info.Cm.Cm_intf.cm_ts <- 0;
      d.depth <- 1;
      match f d with
      | v ->
          d.depth <- 0;
          (try
             commit t d;
             v
           with Tx_signal.Abort -> attempt ~restart:true)
      | exception Tx_signal.Abort ->
          d.depth <- 0;
          attempt ~restart:true
      | exception e ->
          emergency_release t d;
          raise e
    in
    attempt ~restart:false

let atomic t ~tid f = run t ~tid ~irrevocable:false f
let atomic_irrevocable t ~tid f = run t ~tid ~irrevocable:true f

let engine ?config heap : Engine.t =
  let t = create ?config heap in
  (* One [tx_ops] per descriptor, built up front: the per-transaction fast
     path allocates no closures. *)
  let ops =
    Array.init Stats.max_threads (fun tid ->
        let d = t.descs.(tid) in
        {
          Engine.read =
            (fun addr ->
              (* One combined check on the everything-off fast path; the
                 individual collector flags are only consulted behind it. *)
              if !Runtime.Exec.hooks_on then begin
                if !Runtime.Exec.prof_on then
                  Runtime.Exec.set_phase tid Runtime.Exec.ph_read;
                let v = read_word t d addr in
                if !Runtime.Exec.prof_on then
                  Runtime.Exec.set_phase tid Runtime.Exec.ph_other;
                if !Trace.enabled then Trace.on_read ~tid ~addr ~value:v;
                v
              end
              else read_word t d addr);
          write =
            (fun addr v ->
              if !Runtime.Exec.hooks_on then begin
                if !Runtime.Exec.prof_on then
                  Runtime.Exec.set_phase tid Runtime.Exec.ph_write;
                write_word t d addr v;
                if !Runtime.Exec.prof_on then
                  Runtime.Exec.set_phase tid Runtime.Exec.ph_other;
                if !Trace.enabled then Trace.on_write ~tid ~addr ~value:v
              end
              else write_word t d addr v);
          alloc = (fun n -> Memory.Heap.alloc heap n);
        })
  in
  {
    Engine.name;
    heap;
    atomic = (fun ~tid f -> atomic t ~tid (fun _ -> f ops.(tid)));
    atomic_irrevocable =
      (fun ~tid f -> atomic_irrevocable t ~tid (fun _ -> f ops.(tid)));
    stats = (fun () -> Stats.snapshot t.stats);
    reset_stats = (fun () -> Stats.reset t.stats);
  }
