(* TL2 (Dice, Shalev, Shavit — DISC 2006), the paper's lazy baseline.

   Word-based, commit-time locking (lazy acquisition), invisible reads
   against a global version clock, redo logging:

   - one versioned lock per stripe: unlocked = version << 1;
     locked = ((owner+1) << 1) | 1;
   - [start]: sample the clock into [valid_ts];
   - [read]: redo-log lookup, then lock/word/lock double read; abort if the
     stripe is locked or its version exceeds the snapshot (TL2 has *no*
     timestamp extension — that is one of the differences from
     TinySTM/SwissTM);
   - [write]: buffer in the redo log only — write/write conflicts stay
     undetected until commit, which is precisely the behaviour the paper
     blames for TL2's wasted work on long transactions (Figure 6a);
   - [commit]: acquire all write locks (abort on any conflict — timid),
     bump the clock GV4-style, validate the read set, write back, release
     with the new version.

   In kernel axes this is lazy + invisible + commit-time + redo; the
   policy mechanics (versioned locks, GV4, commit acquisition, snapshot
   validation) live in [Kernel.Vlock] and the bookkeeping in
   [Kernel.Hooks] / [Kernel.Driver]. *)

open Stm_intf
open Kernel

type config = {
  granularity_words : int;
  table_bits : int;
  seed : int;
  cm : Cm.Cm_intf.spec;
      (* rollback/throttle policy only: TL2 stays timid at commit-time
         acquisition (it never kills), but the manager owns the retry
         back-off, the adaptive throttle and the escalation budget *)
}

let default_config =
  { granularity_words = 4; table_bits = 18; seed = 0xC0FFEE; cm = Cm.Cm_intf.Timid }

type t = {
  heap : Memory.Heap.t;
  stripe : Memory.Stripe.t;
  locks : Runtime.Tmatomic.t array;
  clock : Runtime.Tmatomic.t;
  descs : Txdesc.t array;
  stats : Stats.t;
  eid : int;  (* metrics-registry engine id *)
  cm : Cm.Cm_intf.t;
  ser : Serial.t;  (* irrevocability token (escalation / explicit) *)
}

let name = "tl2"

let create ?(config = default_config) heap =
  let stripe =
    Memory.Stripe.create ~granularity_words:config.granularity_words
      ~table_bits:config.table_bits ()
  in
  {
    heap;
    stripe;
    locks =
      Array.init (Memory.Stripe.table_size stripe) (fun _ ->
          Runtime.Tmatomic.make 0);
    clock = Runtime.Tmatomic.make 0;
    descs = Driver.make_descs ~seed:config.seed ();
    stats = Stats.create ();
    eid = Obs.Metrics.register_engine name;
    cm = Cm.Factory.make config.cm;
    ser = Serial.create ();
  }

let rollback t (d : Txdesc.t) reason =
  Hooks.phase_commit d.tid;
  Hooks.rollback ~stats:t.stats ~cm:t.cm ~ser:t.ser d ~reason

let read_word t (d : Txdesc.t) addr =
  let costs = Runtime.Costs.get () in
  Stats.read t.stats ~tid:d.tid;
  if Hooks.inject_abort d then rollback t d Tx_signal.Killed;
  let idx = Memory.Stripe.index t.stripe addr in
  (* Redo-log lookup; free for read-only transactions, and [Wlog]'s bloom
     filter makes the common miss cheap for update ones (TL2's own
     write-set Bloom filter trick). *)
  let s =
    if Wlog.is_empty d.wset then -1
    else begin
      Runtime.Exec.tick costs.log_lookup;
      Wlog.probe d.wset addr
    end
  in
  if s >= 0 then Wlog.slot_value d.wset s
  else begin
    let lock = t.locks.(idx) in
    let lv1 = Runtime.Tmatomic.get lock in
    Runtime.Exec.tick costs.mem;
    let value = Memory.Heap.unsafe_read t.heap addr in
    let lv2 = Runtime.Tmatomic.get lock in
    if Vlock.is_locked lv1 || lv1 <> lv2 || Vlock.version_of lv1 > d.valid_ts
    then
      (* Locked or moved past our snapshot: TL2 aborts (no extension). *)
      rollback t d Tx_signal.Rw_validation;
    Runtime.Exec.tick costs.log_append;
    Rset.push d.rset idx 0;
    value
  end

let write_word t (d : Txdesc.t) addr value =
  let costs = Runtime.Costs.get () in
  Stats.write t.stats ~tid:d.tid;
  if Hooks.inject_abort d then rollback t d Tx_signal.Killed;
  Runtime.Exec.tick costs.log_append;
  Wlog.replace d.wset addr value;
  let idx = Memory.Stripe.index t.stripe addr in
  ignore (Rset.add_unique d.wstripes idx 0 : bool)

let commit t (d : Txdesc.t) =
  Hooks.commit_entry d;
  if Wlog.is_empty d.wset then
    (* Read-only: every read was validated against the snapshot. *)
    Hooks.commit_done ~stats:t.stats ~cm:t.cm ~ser:t.ser ~heap:t.heap d
  else begin
    (* Commit gate: an irrevocable transaction must see a frozen clock.
       The waiter holds no locks yet (lazy acquisition), so a plain spin
       is deadlock-free and needs no kill polling. *)
    Hooks.enter_update_commit ~stats:t.stats ~cm:t.cm ~ser:t.ser ~gate_check:Driver.nop_gate_check d;
    Hooks.inject_stretch d;
    (* Acquire every write lock; any conflict aborts (timid). *)
    let conflict = Vlock.acquire_wstripes ~locks:t.locks d in
    if conflict >= 0 then begin
      Hooks.stripe_conflict ~eid:t.eid ~stripe:conflict;
      rollback t d Tx_signal.Ww_conflict
    end;
    let wv, quiescent = Vlock.gv4_bump ~clock:t.clock ~rv:d.valid_ts in
    (* Validate the read set unless nobody else committed since start. *)
    if (not quiescent) && not (Vlock.validate_rv ~locks:t.locks d) then begin
      Vlock.release_wstripes ~locks:t.locks d.wstripes d.acq_saved
        ~upto:(Rset.length d.wstripes);
      rollback t d Tx_signal.Rw_validation
    end;
    Vlock.write_back ~heap:t.heap d;
    Vlock.publish_wstripes ~locks:t.locks d.wstripes ~version:wv;
    Hooks.commit_done ~stats:t.stats ~cm:t.cm ~ser:t.ser ~heap:t.heap d
  end

let start t (d : Txdesc.t) ~restart =
  Hooks.tx_begin ~eid:t.eid d;
  t.cm.on_start d.info ~restart;
  d.valid_ts <- Runtime.Tmatomic.get t.clock;
  Hooks.phase_other d.tid

(* Retry driver with graceful degradation: see [Kernel.Driver] for the
   escalation protocol.  Under the irrevocability token TL2's attempt
   cannot fail in a simulated run — the commit gate freezes the clock, so
   no read validation can observe a newer version and no commit-time lock
   can be held by anyone else once in-flight commits drained. *)
let driver_ops t : Txdesc.t Driver.ops =
  {
    Driver.ser = t.ser;
    cm = t.cm;
    descs = t.descs;
    info = (fun (d : Txdesc.t) -> d.info);
    get_depth = (fun (d : Txdesc.t) -> d.depth);
    set_depth = (fun (d : Txdesc.t) n -> d.depth <- n);
    start = (fun d ~restart -> start t d ~restart);
    commit = (fun d -> commit t d);
    emergency = (fun d -> Hooks.emergency ~cm:t.cm ~ser:t.ser d);
    user_abort = (fun d -> rollback t d Tx_signal.Killed);
  }

let atomic t ~tid f = Driver.run (driver_ops t) ~tid ~irrevocable:false f
let atomic_irrevocable t ~tid f = Driver.run (driver_ops t) ~tid ~irrevocable:true f

let engine ?config heap : Engine.t =
  let t = create ?config heap in
  let dops = driver_ops t in
  let ops =
    Package.ops_array ~heap ~descs:t.descs ~read:(read_word t)
      ~write:(write_word t) ~free:Txdesc.buffer_free
  in
  Package.make ~name ~heap ~stats:t.stats ~ops
    ~runner:
      { Package.run = (fun ~tid ~irrevocable f -> Driver.run dops ~tid ~irrevocable f) }
