(* Back-off policies used by contention managers after a rollback.

   SwissTM uses a randomized *linear* back-off: the wait is uniform in
   [0, base * successive_aborts] cycles (paper, Algorithm 2, line 11).
   Polka-style managers use capped exponential back-off. *)

type policy =
  | No_backoff
  | Linear of { base : int; cap : int }
  | Exponential of { base : int; cap : int }

let default_linear = Linear { base = 3_000; cap = 3_000_000 }

(* The exponential cap must exceed the length of the longest transactions
   (millions of cycles for Lee-TM routes / STMBench7 traversals): Polka-
   style managers escape mutual-kill livelocks only when the back-off can
   grow into a window long enough for one victim to finish. *)
let default_exponential = Exponential { base = 1_000; cap = 64_000_000 }

(** Number of cycles to wait before the [attempt]-th retry (1-based). *)
let delay policy rng ~attempt =
  let attempt = max 1 attempt in
  match policy with
  | No_backoff -> 0
  | Linear { base; cap } ->
      (* Clamp before multiplying: [base * attempt] overflows to a negative
         span for the unbounded attempt counts an abort storm produces, and
         [Rng.int] raises on non-positive bounds. *)
      let span = if base > 0 && attempt > cap / base then cap else base * attempt in
      let span = min cap span in
      Rng.int rng (span + 1)
  | Exponential { base; cap } ->
      let span = min cap (base * (1 lsl min attempt 20)) in
      Rng.int rng (span + 1)

(* Observability hook (installed by lib/obs): called with every non-zero
   back-off wait, before the cycles are charged.  The ref-pair pattern
   keeps the hook-off fast path at one load + one predictable branch and
   avoids a runtime -> obs dependency cycle.  The hook must charge no
   cycles of its own or schedules would diverge when metrics are on. *)
let on_wait : (cycles:int -> unit) ref = ref (fun ~cycles:_ -> ())
let on_wait_enabled = ref false

(** Wait for [cycles]: virtual time in a simulation, a bounded spin loop
    natively. *)
let wait_cycles cycles =
  if cycles > 0 then begin
    if !on_wait_enabled then !on_wait ~cycles;
    if Exec.in_sim () then Exec.tick_as Exec.ph_backoff cycles
    else
      (* Round up so short waits still yield the pipeline at least once;
         [cycles / 8] silently dropped any wait under 8 cycles. *)
      let spins = (cycles + 7) / 8 in
      for _ = 1 to spins do
        Domain.cpu_relax ()
      done
  end

let wait policy rng ~attempt = wait_cycles (delay policy rng ~attempt)
