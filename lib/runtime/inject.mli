(** Deterministic fault injector: spurious aborts, lock-holder stalls and
    commit stretching, drawn from seeded per-thread streams.

    Engines poll the injector where they poll their kill flag, guarding
    every call with the single [!on] load, so the disarmed fast path is one
    load + one predictable branch and disarmed schedules are bit-identical
    to fault-free builds. *)

type profile = {
  abort_ppm : int;  (** per-access spurious-abort probability, ppm *)
  stall_ppm : int;  (** per-lock-acquisition stall probability, ppm *)
  stall_cycles : int;  (** length of an injected holder stall *)
  stretch_ppm : int;  (** per-commit stretch probability, ppm *)
  stretch_cycles : int;  (** length of an injected commit stretch *)
}

val abort_storm : profile
(** A dense storm (one access in eight condemned, frequent holder stalls):
    fixed CM policies exhibit unbounded consecutive-abort runs under it
    within a few hundred transactions. *)

val on : bool ref
(** Guard every injector call with [if !Inject.on then ...]. *)

val exempt : int ref
(** Logical tid exempt from all injection (the irrevocable token holder),
    or [-1].  Maintained by [Stm_intf.Serial]; do not write directly. *)

val arm : seed:int -> profile -> unit
(** Reseed the per-thread fault streams, zero telemetry, set [on]. *)

val disarm : unit -> unit

val spurious_abort : tid:int -> bool
(** Condemn the calling transaction at this access?  Draws from the
    thread's fault stream; always false for the exempt thread. *)

val stall : tid:int -> unit
(** Maybe stall after a lock acquisition (charged to the spin phase). *)

val stretch : tid:int -> unit
(** Maybe lengthen the commit window (charged to the commit phase). *)

val injected_aborts : unit -> int
val injected_stalls : unit -> int
val injected_stretches : unit -> int
