(* Atomic integer cells with a cache-coherence cost model.

   In a simulation, every access charges virtual cycles according to a small
   MESI-style approximation.  Cells can *share a cache line* ([make_shared]):
   SwissTM's r/w lock pair occupies adjacent words of one lock-table entry,
   and RSTM's ownership record packs owner/version/readers together — the
   second access to the same line is a cheap hit, which matters for the
   paper's single-thread overhead comparisons (Figure 5).

   Reads hit if this thread already touched the line since its last writer;
   writes are cheap only with the line held exclusively.  This is the
   mechanism that reproduces the paper's hot-spot effects (Greedy's shared
   timestamp counter, Figure 10; the intruder queue head, Figure 11).

   In native mode the model fields are never touched and operations reduce
   to plain [Atomic] calls (real caches provide the behaviour). *)

type line = {
  mutable owner : int;  (** last writing thread, or -1 *)
  mutable readers : int;  (** bitmask of threads that read since last write *)
  mutable last_miss : int;  (** virtual time of the last coherence miss *)
  mutable queue : int;  (** back-to-back misses: queuing on a hot line *)
  mutable last_accessor : int;
      (** consecutive accesses by one thread to one line cost ~a register
          compare, not a fresh L1 probe — this is what makes SwissTM's
          two-locks-in-one-entry layout nearly as cheap as a single lock *)
}

type t = { v : int Atomic.t; line : line }

let fresh_line () =
  (* [last_miss] must be far in the past, with a magnitude small enough
     that [now - last_miss] cannot overflow for any reachable virtual
     time. *)
  {
    owner = -1;
    readers = 0;
    last_miss = -(1 lsl 50);
    queue = 0;
    last_accessor = -1;
  }

(* A line whose coherence misses arrive within [queue_window] virtual
   cycles of each other is being fought over by several cores; each
   waiter queues behind the previous transfer.  This superlinear penalty
   on genuinely hot lines is what makes a single shared counter (Greedy's
   timestamp, an eagerly retried queue head) collapse scalability, as in
   the paper's Figures 10 and 11. *)
let queue_window = 1000
let max_queue = 16

let miss_cost (costs : Costs.t) line =
  let now = Exec.now () in
  if now - line.last_miss < queue_window then
    line.queue <- min (line.queue + 1) max_queue
  else line.queue <- 0;
  line.last_miss <- now;
  costs.cache_miss * (1 + line.queue)

let make init = { v = Atomic.make init; line = fresh_line () }

(** A cell placed on an existing cache line (adjacent metadata words). *)
let make_shared line init = { v = Atomic.make init; line }

let charge_read t =
  let c = !Exec.cur in
  if c >= 0 then begin
    let costs = Costs.get () in
    let line = t.line in
    let bit = 1 lsl (c land 63) in
    if line.readers land bit <> 0 then begin
      Exec.tick (if line.last_accessor = c then 1 else costs.atomic_hit);
      line.last_accessor <- c
    end
    else begin
      line.readers <- line.readers lor bit;
      line.last_accessor <- c;
      Exec.tick (miss_cost costs line)
    end
  end

let charge_write t ~rmw =
  let c = !Exec.cur in
  if c >= 0 then begin
    let costs = Costs.get () in
    let line = t.line in
    let bit = 1 lsl (c land 63) in
    let exclusive = line.owner = c && line.readers = bit in
    let base =
      if exclusive then
        if line.last_accessor = c then 1 else costs.atomic_hit
      else miss_cost costs line
    in
    line.owner <- c;
    line.readers <- bit;
    line.last_accessor <- c;
    Exec.tick (base + if rmw then costs.cas else 0)
  end

let get t =
  charge_read t;
  Atomic.get t.v

let set t x =
  charge_write t ~rmw:false;
  Atomic.set t.v x

(** Compare-and-swap; charges the full RMW cost whether or not it succeeds
    (a failing CAS still acquires the line exclusively). *)
let cas t ~expect ~replace =
  charge_write t ~rmw:true;
  Atomic.compare_and_set t.v expect replace

let fetch_and_add t n =
  charge_write t ~rmw:true;
  Atomic.fetch_and_add t.v n

(** Atomically increment and return the new value. *)
let incr_get t = fetch_and_add t 1 + 1

(* Cost-free accessors for initialisation and for assertions in tests. *)
let unsafe_get t = Atomic.get t.v
let unsafe_set t x = Atomic.set t.v x

(** Restore the modelled cache line to its freshly-allocated state.
    Descriptor pooling reuses cells (a txinfo's kill flag) across engine
    instances; stale ownership or a stale [last_miss] from a previous run
    would change charged costs, making simulated cycle counts depend on
    GC timing.  Only meaningful for cells with a private line. *)
let reset_line t =
  let l = t.line in
  l.owner <- -1;
  l.readers <- 0;
  l.last_miss <- -(1 lsl 50);
  l.queue <- 0;
  l.last_accessor <- -1
