(* Atomic integer cells with a cache-coherence cost model.

   In a simulation, every access charges virtual cycles according to a small
   MESI-style approximation.  Cells can *share a cache line* ([make_shared]):
   SwissTM's r/w lock pair occupies adjacent words of one lock-table entry,
   and RSTM's ownership record packs owner/version/readers together — the
   second access to the same line is a cheap hit, which matters for the
   paper's single-thread overhead comparisons (Figure 5).

   Reads hit if this thread already touched the line since its last writer;
   writes are cheap only with the line held exclusively.  This is the
   mechanism that reproduces the paper's hot-spot effects (Greedy's shared
   timestamp counter, Figure 10; the intruder queue head, Figure 11).

   Under a multi-socket [Topology] a miss is additionally distance-keyed
   (DESIGN.md §16): a line last touched by this very core is refetched at
   [miss_local], a transfer from a same-socket core costs [miss_socket],
   and a cross-socket transfer costs [miss_cross] plus a queuing penalty
   at the directory of the line's *home socket* (first-touch policy).
   Under the default flat topology the only miss cost is [miss_socket] —
   bit-identical to the pre-topology model.

   In native mode the model fields are never touched and operations reduce
   to plain [Atomic] calls (real caches provide the behaviour). *)

(* The reader set is a bitset over simulated thread ids: the low 63 tids
   live in one immediate [readers] word, tids >= 63 in a lazily allocated
   overflow array ([Topology.max_cores] needs 8 more 63-bit words).  Runs
   that never exceed 63 threads never allocate the overflow, so the hot
   paths of every existing gate are unchanged.  The pre-refactor code
   masked the tid to six bits ([1 lsl (c land 63)]), silently aliasing
   threads >= 64 onto the low bits — distinct threads shared reader bits
   and were charged phantom hits, so >64-thread runs were *wrong*, not
   just unscaled. *)

let bits_per_word = 63
let hi_words = (Topology.max_cores - bits_per_word + bits_per_word - 1) / bits_per_word

type line = {
  mutable owner : int;  (** last writing thread, or -1 *)
  mutable readers : int;  (** bitmask of threads < 63 that read since last write *)
  mutable readers_hi : int array;
      (** overflow reader words for tids >= 63; [||] until one appears *)
  mutable last_miss : int;  (** virtual time of the last coherence miss *)
  mutable queue : int;  (** back-to-back misses: queuing on a hot line *)
  mutable last_accessor : int;
      (** consecutive accesses by one thread to one line cost ~a register
          compare, not a fresh L1 probe — this is what makes SwissTM's
          two-locks-in-one-entry layout nearly as cheap as a single lock *)
  mutable home : int;
      (** home socket (first-touch), or -1; only read multi-socket *)
}

type t = { v : int Atomic.t; line : line }

let fresh_line () =
  (* [last_miss] must be far in the past, with a magnitude small enough
     that [now - last_miss] cannot overflow for any reachable virtual
     time. *)
  {
    owner = -1;
    readers = 0;
    readers_hi = [||];
    last_miss = -(1 lsl 50);
    queue = 0;
    last_accessor = -1;
    home = -1;
  }

(* --- reader-set helpers ------------------------------------------------- *)

let[@inline] reader_mem line c =
  if c < bits_per_word then line.readers land (1 lsl c) <> 0
  else
    let hi = line.readers_hi in
    let w = (c - bits_per_word) / bits_per_word in
    w < Array.length hi
    && hi.(w) land (1 lsl ((c - bits_per_word) mod bits_per_word)) <> 0

let reader_add line c =
  if c < bits_per_word then line.readers <- line.readers lor (1 lsl c)
  else begin
    if Array.length line.readers_hi = 0 then
      line.readers_hi <- Array.make hi_words 0;
    let w = (c - bits_per_word) / bits_per_word in
    line.readers_hi.(w) <-
      line.readers_hi.(w) lor (1 lsl ((c - bits_per_word) mod bits_per_word))
  end

(* Is [c] the sole reader?  (The exclusivity test for cheap writes.) *)
let only_reader line c =
  let hi = line.readers_hi in
  let hi_clear_except w_keep bit_keep =
    let ok = ref true in
    for w = 0 to Array.length hi - 1 do
      let expect = if w = w_keep then bit_keep else 0 in
      if hi.(w) <> expect then ok := false
    done;
    !ok
  in
  if c < bits_per_word then
    line.readers = 1 lsl c && hi_clear_except (-1) 0
  else
    line.readers = 0
    && Array.length hi > 0
    && hi_clear_except
         ((c - bits_per_word) / bits_per_word)
         (1 lsl ((c - bits_per_word) mod bits_per_word))

(* Clear the set and leave [c] as the only reader (a write invalidates
   every other copy). *)
let set_sole_reader line c =
  if Array.length line.readers_hi > 0 then
    Array.fill line.readers_hi 0 (Array.length line.readers_hi) 0;
  if c < bits_per_word then line.readers <- 1 lsl c
  else begin
    line.readers <- 0;
    reader_add line c
  end

(* --- miss costs --------------------------------------------------------- *)

(* A line whose coherence misses arrive within [queue_window] virtual
   cycles of each other is being fought over by several cores; each
   waiter queues behind the previous transfer.  This superlinear penalty
   on genuinely hot lines is what makes a single shared counter (Greedy's
   timestamp, an eagerly retried queue head) collapse scalability, as in
   the paper's Figures 10 and 11. *)
let queue_window = 1000
let max_queue = 16

let[@inline] bump_queue line now =
  if now - line.last_miss < queue_window then
    line.queue <- min (line.queue + 1) max_queue
  else line.queue <- 0;
  line.last_miss <- now

(* Flat topology: one miss cost, exactly the pre-topology model. *)
let miss_cost_flat (costs : Costs.t) line =
  bump_queue line (Exec.now ());
  costs.miss_socket * (1 + line.queue)

(* Multi-socket: key the transfer on where the line last was.  The first
   toucher becomes the line's home socket; cross-socket transfers queue
   at the home socket's directory on top of the per-line queue. *)
let miss_cost_numa (costs : Costs.t) line c =
  let now = Exec.now () in
  bump_queue line now;
  let sock = Topology.socket_of_tid c in
  if line.home < 0 then line.home <- sock;
  let base =
    let la = line.last_accessor in
    if la = c then costs.miss_local
    else if la < 0 then
      (* Cold miss: served from the home socket's memory. *)
      if line.home = sock then costs.miss_socket else costs.miss_cross
    else if Topology.socket_of_tid la = sock then costs.miss_socket
    else
      let q = Topology.dir_charge ~socket:line.home ~now in
      costs.miss_cross + costs.miss_cross * q / 4
  in
  base * (1 + line.queue)

let[@inline] miss_cost costs line c =
  if Topology.is_flat () then miss_cost_flat costs line
  else miss_cost_numa costs line c

let make init = { v = Atomic.make init; line = fresh_line () }

(** A cell placed on an existing cache line (adjacent metadata words). *)
let make_shared line init = { v = Atomic.make init; line }

let charge_read t =
  let c = !Exec.cur in
  if c >= 0 then begin
    let costs = Costs.get () in
    let line = t.line in
    if reader_mem line c then begin
      Topology.count_hit ~socket:(Topology.socket_of_tid c);
      Exec.tick (if line.last_accessor = c then 1 else costs.atomic_hit);
      line.last_accessor <- c
    end
    else begin
      Topology.count_miss ~socket:(Topology.socket_of_tid c);
      (* Price the transfer against the PREVIOUS accessor, then record
         ourselves; state is settled before the tick can yield. *)
      let cost = miss_cost costs line c in
      reader_add line c;
      line.last_accessor <- c;
      Exec.tick cost
    end
  end

let charge_write t ~rmw =
  let c = !Exec.cur in
  if c >= 0 then begin
    let costs = Costs.get () in
    let line = t.line in
    let exclusive = line.owner = c && only_reader line c in
    let base =
      if exclusive then begin
        Topology.count_hit ~socket:(Topology.socket_of_tid c);
        if line.last_accessor = c then 1 else costs.atomic_hit
      end
      else begin
        Topology.count_miss ~socket:(Topology.socket_of_tid c);
        miss_cost costs line c
      end
    in
    line.owner <- c;
    set_sole_reader line c;
    line.last_accessor <- c;
    Exec.tick (base + if rmw then costs.cas else 0)
  end

let get t =
  charge_read t;
  Atomic.get t.v

let set t x =
  charge_write t ~rmw:false;
  Atomic.set t.v x

(** Compare-and-swap; charges the full RMW cost whether or not it succeeds
    (a failing CAS still acquires the line exclusively). *)
let cas t ~expect ~replace =
  charge_write t ~rmw:true;
  Atomic.compare_and_set t.v expect replace

let fetch_and_add t n =
  charge_write t ~rmw:true;
  Atomic.fetch_and_add t.v n

(** Atomically increment and return the new value. *)
let incr_get t = fetch_and_add t 1 + 1

(* Cost-free accessors for initialisation and for assertions in tests. *)
let unsafe_get t = Atomic.get t.v
let unsafe_set t x = Atomic.set t.v x

(** Restore the modelled cache line to its freshly-allocated state.
    Descriptor pooling reuses cells (a txinfo's kill flag) across engine
    instances; stale ownership or a stale [last_miss] from a previous run
    would change charged costs, making simulated cycle counts depend on
    GC timing.  Only meaningful for cells with a private line. *)
let reset_line t =
  let l = t.line in
  l.owner <- -1;
  l.readers <- 0;
  l.readers_hi <- [||];
  l.last_miss <- -(1 lsl 50);
  l.queue <- 0;
  l.last_accessor <- -1;
  l.home <- -1
