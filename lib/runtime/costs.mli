(** Cycle-level cost model of the simulated multiprocessor.

    The constants approximate the paper's 2.4 GHz Opteron; only the ratios
    between local work, synchronisation and cross-core traffic matter for
    reproducing the evaluation's shapes.  The model is a process-wide
    setting read on the simulator's fast path; override it from test or
    bench setup code only, never while simulated threads run. *)

type t = {
  mem : int;  (** plain heap word access *)
  atomic_hit : int;  (** atomic access, line already local *)
  miss_local : int;  (** line refetched from this core's own hierarchy *)
  miss_socket : int;
      (** line transferred from another core on the same socket (the old
          flat-model [cache_miss]; sole miss cost under a flat topology) *)
  miss_cross : int;  (** line transferred from a remote socket *)
  cas : int;  (** extra cost of a read-modify-write *)
  log_append : int;  (** appending a read/write-log entry *)
  log_lookup : int;  (** redo-log lookup (read-after-write) *)
  validate_entry : int;  (** revalidating one read-log entry *)
  tx_begin : int;  (** transaction-start overhead *)
  tx_end : int;  (** commit/rollback bookkeeping *)
  pause : int;  (** one spin-wait iteration *)
  work : int;  (** one unit of application-level compute *)
}

val default : t
val get : unit -> t
val set : t -> unit
val reset : unit -> unit

val cycles_per_second : float
(** Simulated clock rate used to convert virtual cycles to seconds. *)

val seconds_of_cycles : int -> float
val pp : Format.formatter -> t -> unit

val apply_env : unit -> unit
(** Re-read the [SWISSTM_COSTS] override ("mem=3,miss_socket=200,...";
    the pre-topology key "cache_miss" aliases [miss_socket]); applied
    once automatically at program start. *)
