(** Deterministic SplitMix64 pseudo-random generator.

    Every simulated or native thread owns its own generator, derived from a
    global seed and the thread id, making runs reproducible independently
    of scheduling. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val for_thread : seed:int -> tid:int -> t
(** Thread-local generator decorrelated from neighbouring [tid]s. *)

val reseed : t -> seed:int -> tid:int -> unit
(** Reset in place to the stream [for_thread ~seed ~tid] produces
    (descriptor pooling reuses generators across engine instances). *)

val next64 : t -> int64
(** Raw 64-bit output. *)

val bits : t -> int
(** Uniform non-negative 62-bit int. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Raises [Invalid_argument] if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
