(** Machine topology for the simulated multiprocessor (DESIGN.md §16).

    [sockets] NUMA packages of [cores_per_socket] cores each; thread
    [tid] is pinned to core [tid mod cores], and cores fill sockets
    compactly.  The default single-socket ("flat") topology makes every
    cost bit-identical to the pre-topology model, which is what keeps
    the frozen ≤8-thread gates valid.  A process-wide setting like
    {!Costs}: write it from test/bench setup only, never while simulated
    threads run. *)

val max_cores : int
(** Hard ceiling on simulated cores (512). *)

val max_sockets : int

type t = { sockets : int; cores_per_socket : int }

val flat : t
(** One socket spanning {!max_cores} cores — the default. *)

val make : sockets:int -> cores_per_socket:int -> t
(** Raises [Invalid_argument] if either is non-positive or the product
    exceeds {!max_cores}. *)

val cores : t -> int

val get : unit -> t
val set : t -> unit
(** Install a topology; resets the per-socket directory state and the
    hit/miss/steal counters so runs never share queuing history. *)

val reset : unit -> unit
(** [set flat]. *)

val is_flat : unit -> bool
(** True when the current topology has a single socket; the cost model
    takes the pre-topology fast path. *)

val core_of_tid : int -> int
val socket_of_core : int -> int
val socket_of_tid : int -> int

val dir_charge : socket:int -> now:int -> int
(** Record a cross-socket miss homed at [socket] at virtual time [now];
    returns the directory queue depth (0 when the directory is cold),
    which the caller turns into extra cycles.  The NUMA analogue of
    [Tmatomic]'s per-line queue. *)

val count_hit : socket:int -> unit
val count_miss : socket:int -> unit
val count_steal : socket:int -> unit
(** Uncharged per-socket counters, incremented from simulation fast
    paths and read by [Obs]. *)

val socket_counters : unit -> (int * int * int) array
(** [(hits, misses, steals)] per socket of the current topology. *)

val reset_counters : unit -> unit

val pp : Format.formatter -> t -> unit
