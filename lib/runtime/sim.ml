(* Deterministic discrete-event scheduler for simulated threads.

   Each thread is an OCaml 5 fiber.  Threads advance their private virtual
   clocks through [Exec.tick]; which runnable thread gets resumed — and for
   how long — is decided by a pluggable *policy*:

   - [Earliest_first] (the default): always resume the runnable thread with
     the smallest virtual time (ties broken by thread id).  A thread keeps
     running without a context switch for as long as it remains the
     earliest one; the resulting schedule is identical to switching on
     every tick, minus the overhead.  This is the policy every benchmark
     runs under: it is the one that makes virtual makespans meaningful.

   - [Random _]: seeded perturbation for schedule exploration.  Each
     decision picks uniformly among the live threads whose clocks are
     within [window] cycles of the minimum and runs the winner for a
     random quantum.  Clocks still advance monotonically, so no thread
     starves (a lagging thread is eventually the minimum and therefore
     always a candidate), but tie-breaks and preemption points differ per
     seed — each seed is one more interleaving of the same program.

   - [Pct _]: PCT-style priority scheduling (Burckhardt et al., ASPLOS
     2010) with [depth - 1] priority-change points spread over [horizon]
     virtual cycles.  The highest-priority live thread runs; at each
     change point the running thread's priority drops below everyone
     else's.  A thread that yields without progress (a spin loop blocked
     on a lock, [Exec.blocked_yield]) is likewise demoted so the lock
     owner can run — the standard PCT treatment of yields, and the reason
     the policy cannot livelock on the engines' spin-wait loops.

   All three are deterministic functions of (bodies, policy): same seed,
   same schedule — which is what makes a failing fuzzer triple
   (policy, seed, program) replayable. *)

exception Timeout of int
(** Raised when every live thread's virtual clock passed the [cap_cycles]
    safety limit — in this codebase that means a livelock bug. *)

exception Nested_simulation

type policy =
  | Earliest_first
  | Random of { seed : int; window : int; quantum : int }
  | Pct of { seed : int; depth : int; horizon : int }

let default_policy = Earliest_first

let random_policy ?(window = 5_000) ?(quantum = 2_000) seed =
  Random { seed; window; quantum }

let pct_policy ?(depth = 3) ?(horizon = 2_000_000) seed =
  Pct { seed; depth; horizon }

let policy_name = function
  | Earliest_first -> "earliest"
  | Random { seed; _ } -> Printf.sprintf "random:%d" seed
  | Pct { seed; depth; _ } -> Printf.sprintf "pct:%d(d=%d)" seed depth

type state = {
  conts : (unit, unit) Effect.Deep.continuation option array;
  started : bool array;
  finished : bool array;
  vtimes : int array;
}

let make_handler st tid =
  {
    Effect.Deep.retc = (fun () -> st.finished.(tid) <- true);
    exnc =
      (fun e ->
        (* re-raise with the thread body's backtrace, not this frame's *)
        Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Exec.Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                st.conts.(tid) <- Some k)
        | _ -> None);
  }

(* Observability hook (installed by lib/obs): called with the thread id on
   every dispatch decision, before the thread is resumed.  Same ref-pair
   discipline as the Trace hooks: one load + one branch when off, and the
   hook must not charge cycles or touch scheduler state. *)
let on_dispatch : (int -> unit) ref = ref (fun _ -> ())
let on_dispatch_enabled = ref false

(* Resume thread [tid] until it yields or finishes; decrement [alive] when
   it finished.  Shared by every policy loop. *)
let step st bodies alive tid =
  if !on_dispatch_enabled then !on_dispatch tid;
  Exec.cur := tid;
  Exec.blocked_yield := false;
  (match st.conts.(tid) with
  | Some k ->
      st.conts.(tid) <- None;
      Effect.Deep.continue k ()
  | None ->
      if st.started.(tid) then
        (* A started thread with no continuation yielded nothing and
           did not finish: impossible by construction. *)
        assert false
      else begin
        st.started.(tid) <- true;
        Effect.Deep.match_with bodies.(tid) () (make_handler st tid)
      end);
  Exec.cur := -1;
  if st.finished.(tid) then decr alive

(* --- indexed heap ------------------------------------------------------ *)

(* Indexed binary heap over thread ids under a pluggable strict total
   order.  Replaces the O(n) per-dispatch scans below: at 512 simulated
   threads the scans made every policy loop quadratic in the schedule
   length.  Only the just-stepped thread's key ever changes (its clock
   moved, or PCT demoted it), so each dispatch costs one O(log n) [fix]
   plus O(1) reads — and the orders used are exactly the scans'
   tie-breaks, so schedules are bit-identical (gated by the
   heap-vs-scan differential test and the frozen sb7 matrix). *)
module Iheap = struct
  type t = {
    heap : int array;  (* position -> tid *)
    pos : int array;  (* tid -> position, -1 once removed *)
    less : int -> int -> bool;
    mutable size : int;
  }

  let swap h i j =
    let a = h.heap.(i) and b = h.heap.(j) in
    h.heap.(i) <- b;
    h.heap.(j) <- a;
    h.pos.(b) <- i;
    h.pos.(a) <- j

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if h.less h.heap.(i) h.heap.(p) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 in
    if l < h.size then begin
      let m =
        if l + 1 < h.size && h.less h.heap.(l + 1) h.heap.(l) then l + 1
        else l
      in
      if h.less h.heap.(m) h.heap.(i) then begin
        swap h i m;
        sift_down h m
      end
    end

  let make n less =
    let h =
      {
        heap = Array.init n (fun i -> i);
        pos = Array.init n (fun i -> i);
        less;
        size = n;
      }
    in
    for i = (n / 2) - 1 downto 0 do
      sift_down h i
    done;
    h

  let min h = h.heap.(0)

  (* Restore the invariant after tid's key changed in either direction. *)
  let fix h tid =
    sift_down h h.pos.(tid);
    sift_up h h.pos.(tid)

  let remove h tid =
    let i = h.pos.(tid) in
    let last = h.size - 1 in
    h.size <- last;
    h.pos.(tid) <- -1;
    if i <> last then begin
      let moved = h.heap.(last) in
      h.heap.(i) <- moved;
      h.pos.(moved) <- i;
      fix h moved
    end
end

(* --- policy loops (heap dispatch) -------------------------------------- *)

(* The scans pick the smallest (vtime, tid) pair; the same lexicographic
   order keyed into the heap reproduces their selection exactly. *)
let vtime_less st a b =
  let ta = st.vtimes.(a) and tb = st.vtimes.(b) in
  ta < tb || (ta = tb && a < b)

let run_earliest_heap st bodies alive n cap_cycles =
  let h = Iheap.make n (vtime_less st) in
  while !alive > 0 do
    let best = Iheap.min h in
    let best_t = st.vtimes.(best) in
    if best_t > cap_cycles then raise (Timeout best_t);
    (* The second-smallest element under the heap's total order is one of
       the root's children, and — the order being vtime-major — carries
       the second-smallest vtime (the scan's [second]). *)
    let second = ref max_int in
    if h.Iheap.size > 1 then second := st.vtimes.(h.Iheap.heap.(1));
    if h.Iheap.size > 2 then
      second := Stdlib.min !second st.vtimes.(h.Iheap.heap.(2));
    Exec.next_deadline := Stdlib.min !second cap_cycles;
    step st bodies alive best;
    if st.finished.(best) then Iheap.remove h best else Iheap.fix h best
  done

let run_random_heap st bodies alive n cap_cycles ~seed ~window ~quantum =
  let rng = Rng.create seed in
  let h = Iheap.make n (vtime_less st) in
  let cand = Array.make n 0 in
  while !alive > 0 do
    let min_t = st.vtimes.(Iheap.min h) in
    if min_t > cap_cycles then raise (Timeout min_t);
    let limit = min_t + window in
    (* Collect the candidate set by descending the heap and pruning where
       the clock passes [limit] (clocks are nondecreasing along any
       root-to-leaf path), then sort by tid so the pick index means the
       same thing as under the scan's ascending-tid enumeration. *)
    let count = ref 0 in
    let rec visit i =
      if i < h.Iheap.size then begin
        let tid = h.Iheap.heap.(i) in
        if st.vtimes.(tid) <= limit then begin
          cand.(!count) <- tid;
          incr count;
          visit ((2 * i) + 1);
          visit ((2 * i) + 2)
        end
      end
    in
    visit 0;
    for i = 1 to !count - 1 do
      let x = cand.(i) in
      let j = ref i in
      while !j > 0 && cand.(!j - 1) > x do
        cand.(!j) <- cand.(!j - 1);
        decr j
      done;
      cand.(!j) <- x
    done;
    let pick = Rng.int rng !count in
    let tid = cand.(pick) in
    Exec.next_deadline :=
      Stdlib.min (st.vtimes.(tid) + 1 + Rng.int rng quantum) cap_cycles;
    step st bodies alive tid;
    if st.finished.(tid) then Iheap.remove h tid else Iheap.fix h tid
  done

let run_pct_heap st bodies alive n cap_cycles ~seed ~depth ~horizon =
  let rng = Rng.create seed in
  let prio = Array.init n (fun i -> i) in
  Rng.shuffle rng prio;
  let floor_prio = ref (-1) in
  let change_points =
    Array.init (max 0 (depth - 1)) (fun _ -> Rng.int rng horizon)
  in
  Array.sort compare change_points;
  let next_change = ref 0 in
  let progressed = ref 0 in
  let lag = 4 * horizon in
  (* Two heaps: clocks for the timeout/lag minimum, priorities for the
     selection.  Priorities are unique by construction (a permutation,
     then strictly decreasing fresh values), so the max needs no
     tie-break. *)
  let vh = Iheap.make n (vtime_less st) in
  let ph = Iheap.make n (fun a b -> prio.(a) > prio.(b)) in
  while !alive > 0 do
    let min_t = st.vtimes.(Iheap.min vh) in
    if min_t > cap_cycles then raise (Timeout min_t);
    let tid = Iheap.min ph in
    let until_change =
      if !next_change < Array.length change_points then
        max 1 (change_points.(!next_change) - !progressed)
      else max_int
    in
    let before = st.vtimes.(tid) in
    let lag_deadline = min_t + lag in
    let change_deadline =
      if until_change = max_int then max_int else before + until_change
    in
    Exec.next_deadline :=
      Stdlib.min (Stdlib.min change_deadline lag_deadline) cap_cycles;
    step st bodies alive tid;
    progressed := !progressed + (st.vtimes.(tid) - before);
    let fin = st.finished.(tid) in
    if fin then begin
      Iheap.remove vh tid;
      Iheap.remove ph tid
    end
    else Iheap.fix vh tid;
    if
      !next_change < Array.length change_points
      && !progressed >= change_points.(!next_change)
    then begin
      prio.(tid) <- !floor_prio;
      decr floor_prio;
      incr next_change;
      if not fin then Iheap.fix ph tid
    end
    else if
      (not fin) && (!Exec.blocked_yield || st.vtimes.(tid) >= lag_deadline)
    then begin
      prio.(tid) <- !floor_prio;
      decr floor_prio;
      Iheap.fix ph tid
    end
  done

(* --- policy loops (legacy linear scans) --------------------------------

   Kept verbatim as the reference implementation: the heap-vs-scan
   differential test asserts bit-identical schedules at n <= 8, and the
   frozen sb7 smoke matrix pins the heap path to what these produced. *)

(* The benchmark policy: always the earliest live thread, preempted when it
   ticks past the second-earliest clock. *)
let run_earliest st bodies alive n cap_cycles =
  while !alive > 0 do
    (* Select the earliest live thread and the deadline after which it
       must yield back (the second-earliest live thread's clock). *)
    let best = ref (-1) and best_t = ref max_int and second = ref max_int in
    for i = 0 to n - 1 do
      if not st.finished.(i) then begin
        let t = st.vtimes.(i) in
        if t < !best_t then begin
          second := !best_t;
          best_t := t;
          best := i
        end
        else if t < !second then second := t
      end
    done;
    if !best_t > cap_cycles then raise (Timeout !best_t);
    (* Clamp to the cap so even a lone runaway thread yields back and
       the timeout check above fires. *)
    Exec.next_deadline := min !second cap_cycles;
    step st bodies alive !best
  done

(* Seeded perturbation: pick uniformly among live threads within [window]
   cycles of the minimum clock, run the winner for a random quantum. *)
let run_random st bodies alive n cap_cycles ~seed ~window ~quantum =
  let rng = Rng.create seed in
  while !alive > 0 do
    let min_t = ref max_int in
    for i = 0 to n - 1 do
      if (not st.finished.(i)) && st.vtimes.(i) < !min_t then
        min_t := st.vtimes.(i)
    done;
    if !min_t > cap_cycles then raise (Timeout !min_t);
    let limit = !min_t + window in
    let candidates = ref 0 in
    for i = 0 to n - 1 do
      if (not st.finished.(i)) && st.vtimes.(i) <= limit then incr candidates
    done;
    let pick = Rng.int rng !candidates in
    let tid = ref (-1) and seen = ref 0 in
    (try
       for i = 0 to n - 1 do
         if (not st.finished.(i)) && st.vtimes.(i) <= limit then begin
           if !seen = pick then begin
             tid := i;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    Exec.next_deadline :=
      min (st.vtimes.(!tid) + 1 + Rng.int rng quantum) cap_cycles;
    step st bodies alive !tid
  done

(* PCT: random static priorities, [depth - 1] change points over [horizon]
   cycles of cumulative progress, blocked yields demote the spinner.

   One addition over textbook PCT: no thread may run more than [4 *
   horizon] cycles ahead of the slowest live thread without being
   demoted.  PCT assumes the running thread makes global progress, but an
   abort-retry duel (e.g. the timid CM aborting the attacker against a
   preempted lock holder) spins at top priority without ever performing a
   blocked yield; under earliest-first the duel self-heals because the
   spinner's clock overtakes the victim's, so only priority policies need
   the explicit lag bound.  It restores starvation freedom and keeps the
   schedule deterministic. *)
let run_pct st bodies alive n cap_cycles ~seed ~depth ~horizon =
  let rng = Rng.create seed in
  let prio = Array.init n (fun i -> i) in
  Rng.shuffle rng prio;
  (* Monotone source of fresh lowest priorities for demotions. *)
  let floor_prio = ref (-1) in
  let change_points =
    Array.init (max 0 (depth - 1)) (fun _ -> Rng.int rng horizon)
  in
  Array.sort compare change_points;
  let next_change = ref 0 in
  let progressed = ref 0 in
  let lag = 4 * horizon in
  while !alive > 0 do
    let best = ref (-1) and min_t = ref max_int in
    for i = 0 to n - 1 do
      if not st.finished.(i) then begin
        if st.vtimes.(i) < !min_t then min_t := st.vtimes.(i);
        if !best < 0 || prio.(i) > prio.(!best) then best := i
      end
    done;
    if !min_t > cap_cycles then raise (Timeout !min_t);
    let tid = !best in
    (* Run until the next change point (translated into this thread's
       virtual clock via cumulative progress) or the lag bound. *)
    let until_change =
      if !next_change < Array.length change_points then
        max 1 (change_points.(!next_change) - !progressed)
      else max_int
    in
    let before = st.vtimes.(tid) in
    let lag_deadline = !min_t + lag in
    let change_deadline =
      if until_change = max_int then max_int else before + until_change
    in
    Exec.next_deadline := min (min change_deadline lag_deadline) cap_cycles;
    step st bodies alive tid;
    progressed := !progressed + (st.vtimes.(tid) - before);
    if
      !next_change < Array.length change_points
      && !progressed >= change_points.(!next_change)
    then begin
      (* Change point: the running thread's priority drops below all. *)
      prio.(tid) <- !floor_prio;
      decr floor_prio;
      incr next_change
    end
    else if
      (not st.finished.(tid))
      && (!Exec.blocked_yield || st.vtimes.(tid) >= lag_deadline)
    then begin
      (* A blocked spinner — or a monopolist that hit the lag bound —
         must let the thread it is (transitively) waiting on run. *)
      prio.(tid) <- !floor_prio;
      decr floor_prio
    end
  done

(** [run bodies] executes all thread bodies to completion under the
    simulated scheduler and returns the final per-thread virtual times.
    [cap_cycles] (default 10^12) bounds any thread's virtual clock and turns
    livelocks into a [Timeout].  [policy] selects the schedule (default
    {!Earliest_first}); all policies are deterministic given their seed.
    [dispatch] selects the dispatcher implementation: the indexed heap
    (default) or the legacy linear scans it replaced — both produce
    bit-identical schedules (the scans are kept as the reference for the
    differential gate). *)
let run ?(cap_cycles = 1_000_000_000_000) ?(policy = Earliest_first)
    ?(dispatch = `Heap) (bodies : (unit -> unit) array) =
  if Exec.in_sim () then raise Nested_simulation;
  let n = Array.length bodies in
  if n = 0 then [||]
  else begin
    let st =
      {
        conts = Array.make n None;
        started = Array.make n false;
        finished = Array.make n false;
        vtimes = Array.make n 0;
      }
    in
    let saved_vtimes = !Exec.vtimes and saved_deadline = !Exec.next_deadline in
    Exec.vtimes := st.vtimes;
    let cleanup () =
      Exec.cur := -1;
      Exec.vtimes := saved_vtimes;
      Exec.next_deadline := saved_deadline
    in
    Fun.protect ~finally:cleanup (fun () ->
        let alive = ref n in
        (match (policy, dispatch) with
        | Earliest_first, `Heap -> run_earliest_heap st bodies alive n cap_cycles
        | Earliest_first, `Scan -> run_earliest st bodies alive n cap_cycles
        | Random { seed; window; quantum }, `Heap ->
            run_random_heap st bodies alive n cap_cycles ~seed ~window ~quantum
        | Random { seed; window; quantum }, `Scan ->
            run_random st bodies alive n cap_cycles ~seed ~window ~quantum
        | Pct { seed; depth; horizon }, `Heap ->
            run_pct_heap st bodies alive n cap_cycles ~seed ~depth ~horizon
        | Pct { seed; depth; horizon }, `Scan ->
            run_pct st bodies alive n cap_cycles ~seed ~depth ~horizon);
        Array.copy st.vtimes)
  end

(** Convenience wrapper: run [threads] copies of [body tid] and return the
    maximum final virtual time (the simulated makespan, in cycles). *)
let run_threads ?cap_cycles ?policy ?dispatch ~threads body =
  let vts =
    run ?cap_cycles ?policy ?dispatch
      (Array.init threads (fun tid () -> body tid))
  in
  Array.fold_left max 0 vts
