(* Deterministic discrete-event scheduler for simulated threads.

   Each thread is an OCaml 5 fiber.  Threads advance their private virtual
   clocks through [Exec.tick]; which runnable thread gets resumed — and for
   how long — is decided by a pluggable *policy*:

   - [Earliest_first] (the default): always resume the runnable thread with
     the smallest virtual time (ties broken by thread id).  A thread keeps
     running without a context switch for as long as it remains the
     earliest one; the resulting schedule is identical to switching on
     every tick, minus the overhead.  This is the policy every benchmark
     runs under: it is the one that makes virtual makespans meaningful.

   - [Random _]: seeded perturbation for schedule exploration.  Each
     decision picks uniformly among the live threads whose clocks are
     within [window] cycles of the minimum and runs the winner for a
     random quantum.  Clocks still advance monotonically, so no thread
     starves (a lagging thread is eventually the minimum and therefore
     always a candidate), but tie-breaks and preemption points differ per
     seed — each seed is one more interleaving of the same program.

   - [Pct _]: PCT-style priority scheduling (Burckhardt et al., ASPLOS
     2010) with [depth - 1] priority-change points spread over [horizon]
     virtual cycles.  The highest-priority live thread runs; at each
     change point the running thread's priority drops below everyone
     else's.  A thread that yields without progress (a spin loop blocked
     on a lock, [Exec.blocked_yield]) is likewise demoted so the lock
     owner can run — the standard PCT treatment of yields, and the reason
     the policy cannot livelock on the engines' spin-wait loops.

   All three are deterministic functions of (bodies, policy): same seed,
   same schedule — which is what makes a failing fuzzer triple
   (policy, seed, program) replayable. *)

exception Timeout of int
(** Raised when every live thread's virtual clock passed the [cap_cycles]
    safety limit — in this codebase that means a livelock bug. *)

exception Nested_simulation

type policy =
  | Earliest_first
  | Random of { seed : int; window : int; quantum : int }
  | Pct of { seed : int; depth : int; horizon : int }

let default_policy = Earliest_first

let random_policy ?(window = 5_000) ?(quantum = 2_000) seed =
  Random { seed; window; quantum }

let pct_policy ?(depth = 3) ?(horizon = 2_000_000) seed =
  Pct { seed; depth; horizon }

let policy_name = function
  | Earliest_first -> "earliest"
  | Random { seed; _ } -> Printf.sprintf "random:%d" seed
  | Pct { seed; depth; _ } -> Printf.sprintf "pct:%d(d=%d)" seed depth

type state = {
  conts : (unit, unit) Effect.Deep.continuation option array;
  started : bool array;
  finished : bool array;
  vtimes : int array;
}

let make_handler st tid =
  {
    Effect.Deep.retc = (fun () -> st.finished.(tid) <- true);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Exec.Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                st.conts.(tid) <- Some k)
        | _ -> None);
  }

(* Observability hook (installed by lib/obs): called with the thread id on
   every dispatch decision, before the thread is resumed.  Same ref-pair
   discipline as the Trace hooks: one load + one branch when off, and the
   hook must not charge cycles or touch scheduler state. *)
let on_dispatch : (int -> unit) ref = ref (fun _ -> ())
let on_dispatch_enabled = ref false

(* Resume thread [tid] until it yields or finishes; decrement [alive] when
   it finished.  Shared by every policy loop. *)
let step st bodies alive tid =
  if !on_dispatch_enabled then !on_dispatch tid;
  Exec.cur := tid;
  Exec.blocked_yield := false;
  (match st.conts.(tid) with
  | Some k ->
      st.conts.(tid) <- None;
      Effect.Deep.continue k ()
  | None ->
      if st.started.(tid) then
        (* A started thread with no continuation yielded nothing and
           did not finish: impossible by construction. *)
        assert false
      else begin
        st.started.(tid) <- true;
        Effect.Deep.match_with bodies.(tid) () (make_handler st tid)
      end);
  Exec.cur := -1;
  if st.finished.(tid) then decr alive

(* --- policy loops ------------------------------------------------------ *)

(* The benchmark policy: always the earliest live thread, preempted when it
   ticks past the second-earliest clock. *)
let run_earliest st bodies alive n cap_cycles =
  while !alive > 0 do
    (* Select the earliest live thread and the deadline after which it
       must yield back (the second-earliest live thread's clock). *)
    let best = ref (-1) and best_t = ref max_int and second = ref max_int in
    for i = 0 to n - 1 do
      if not st.finished.(i) then begin
        let t = st.vtimes.(i) in
        if t < !best_t then begin
          second := !best_t;
          best_t := t;
          best := i
        end
        else if t < !second then second := t
      end
    done;
    if !best_t > cap_cycles then raise (Timeout !best_t);
    (* Clamp to the cap so even a lone runaway thread yields back and
       the timeout check above fires. *)
    Exec.next_deadline := min !second cap_cycles;
    step st bodies alive !best
  done

(* Seeded perturbation: pick uniformly among live threads within [window]
   cycles of the minimum clock, run the winner for a random quantum. *)
let run_random st bodies alive n cap_cycles ~seed ~window ~quantum =
  let rng = Rng.create seed in
  while !alive > 0 do
    let min_t = ref max_int in
    for i = 0 to n - 1 do
      if (not st.finished.(i)) && st.vtimes.(i) < !min_t then
        min_t := st.vtimes.(i)
    done;
    if !min_t > cap_cycles then raise (Timeout !min_t);
    let limit = !min_t + window in
    let candidates = ref 0 in
    for i = 0 to n - 1 do
      if (not st.finished.(i)) && st.vtimes.(i) <= limit then incr candidates
    done;
    let pick = Rng.int rng !candidates in
    let tid = ref (-1) and seen = ref 0 in
    (try
       for i = 0 to n - 1 do
         if (not st.finished.(i)) && st.vtimes.(i) <= limit then begin
           if !seen = pick then begin
             tid := i;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    Exec.next_deadline :=
      min (st.vtimes.(!tid) + 1 + Rng.int rng quantum) cap_cycles;
    step st bodies alive !tid
  done

(* PCT: random static priorities, [depth - 1] change points over [horizon]
   cycles of cumulative progress, blocked yields demote the spinner.

   One addition over textbook PCT: no thread may run more than [4 *
   horizon] cycles ahead of the slowest live thread without being
   demoted.  PCT assumes the running thread makes global progress, but an
   abort-retry duel (e.g. the timid CM aborting the attacker against a
   preempted lock holder) spins at top priority without ever performing a
   blocked yield; under earliest-first the duel self-heals because the
   spinner's clock overtakes the victim's, so only priority policies need
   the explicit lag bound.  It restores starvation freedom and keeps the
   schedule deterministic. *)
let run_pct st bodies alive n cap_cycles ~seed ~depth ~horizon =
  let rng = Rng.create seed in
  let prio = Array.init n (fun i -> i) in
  Rng.shuffle rng prio;
  (* Monotone source of fresh lowest priorities for demotions. *)
  let floor_prio = ref (-1) in
  let change_points =
    Array.init (max 0 (depth - 1)) (fun _ -> Rng.int rng horizon)
  in
  Array.sort compare change_points;
  let next_change = ref 0 in
  let progressed = ref 0 in
  let lag = 4 * horizon in
  while !alive > 0 do
    let best = ref (-1) and min_t = ref max_int in
    for i = 0 to n - 1 do
      if not st.finished.(i) then begin
        if st.vtimes.(i) < !min_t then min_t := st.vtimes.(i);
        if !best < 0 || prio.(i) > prio.(!best) then best := i
      end
    done;
    if !min_t > cap_cycles then raise (Timeout !min_t);
    let tid = !best in
    (* Run until the next change point (translated into this thread's
       virtual clock via cumulative progress) or the lag bound. *)
    let until_change =
      if !next_change < Array.length change_points then
        max 1 (change_points.(!next_change) - !progressed)
      else max_int
    in
    let before = st.vtimes.(tid) in
    let lag_deadline = !min_t + lag in
    let change_deadline =
      if until_change = max_int then max_int else before + until_change
    in
    Exec.next_deadline := min (min change_deadline lag_deadline) cap_cycles;
    step st bodies alive tid;
    progressed := !progressed + (st.vtimes.(tid) - before);
    if
      !next_change < Array.length change_points
      && !progressed >= change_points.(!next_change)
    then begin
      (* Change point: the running thread's priority drops below all. *)
      prio.(tid) <- !floor_prio;
      decr floor_prio;
      incr next_change
    end
    else if
      (not st.finished.(tid))
      && (!Exec.blocked_yield || st.vtimes.(tid) >= lag_deadline)
    then begin
      (* A blocked spinner — or a monopolist that hit the lag bound —
         must let the thread it is (transitively) waiting on run. *)
      prio.(tid) <- !floor_prio;
      decr floor_prio
    end
  done

(** [run bodies] executes all thread bodies to completion under the
    simulated scheduler and returns the final per-thread virtual times.
    [cap_cycles] (default 10^12) bounds any thread's virtual clock and turns
    livelocks into a [Timeout].  [policy] selects the schedule (default
    {!Earliest_first}); all policies are deterministic given their seed. *)
let run ?(cap_cycles = 1_000_000_000_000) ?(policy = Earliest_first)
    (bodies : (unit -> unit) array) =
  if Exec.in_sim () then raise Nested_simulation;
  let n = Array.length bodies in
  if n = 0 then [||]
  else begin
    let st =
      {
        conts = Array.make n None;
        started = Array.make n false;
        finished = Array.make n false;
        vtimes = Array.make n 0;
      }
    in
    let saved_vtimes = !Exec.vtimes and saved_deadline = !Exec.next_deadline in
    Exec.vtimes := st.vtimes;
    let cleanup () =
      Exec.cur := -1;
      Exec.vtimes := saved_vtimes;
      Exec.next_deadline := saved_deadline
    in
    Fun.protect ~finally:cleanup (fun () ->
        let alive = ref n in
        (match policy with
        | Earliest_first -> run_earliest st bodies alive n cap_cycles
        | Random { seed; window; quantum } ->
            run_random st bodies alive n cap_cycles ~seed ~window ~quantum
        | Pct { seed; depth; horizon } ->
            run_pct st bodies alive n cap_cycles ~seed ~depth ~horizon);
        Array.copy st.vtimes)
  end

(** Convenience wrapper: run [threads] copies of [body tid] and return the
    maximum final virtual time (the simulated makespan, in cycles). *)
let run_threads ?cap_cycles ?policy ~threads body =
  let vts =
    run ?cap_cycles ?policy (Array.init threads (fun tid () -> body tid))
  in
  Array.fold_left max 0 vts
