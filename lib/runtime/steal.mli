(** Per-core work-stealing deques for transactional tasks (DESIGN.md §16).

    Manticore-vproc shape: each simulated core owns a deque of thunks;
    the owner pushes/pops at the bottom (LIFO), thieves take from the top
    (FIFO).  The simulator is single-threaded, so the point is the cost
    model, not synchronisation: popping locally costs [mem], probing a
    victim costs a same-socket or cross-socket miss by distance, and a
    successful steal pays one more transfer, bumps the thief socket's
    steal counter and fires {!on_steal}.  Victim order is a seeded
    per-core rotation — schedules are deterministic given the seed. *)

type task = unit -> unit
type t

val create : ?seed:int -> cores:int -> unit -> t
(** One deque and one victim-selection stream per core.  Raises
    [Invalid_argument] if [cores] is non-positive or exceeds
    [Topology.max_cores]. *)

val push : t -> core:int -> task -> unit
(** Owner push at the bottom of [core]'s deque (uncharged: spawning is
    accounted by the caller). *)

val pop_own : t -> core:int -> task option
(** Owner pop at the bottom; charges [Costs.mem]. *)

val try_steal : t -> core:int -> task option
(** One stealing round: probe up to 32 other cores in a seeded circular
    rotation, each probe charged by distance; take from the first
    non-empty victim (one more distance-charged transfer).  [None] after
    a fruitless round. *)

val acquire : t -> core:int -> task option
(** [pop_own] first, then [try_steal]. *)

val pending : t -> int
(** Tasks pushed and not yet taken, across all deques. *)

val steals : t -> int
val probes : t -> int

val on_steal : (thief:int -> victim:int -> unit) ref
(** Fired on every successful steal, after the costs were charged.
    Installed by the harness layer to surface migrations to the CM and
    Obs; must not charge cycles. *)
