(* Execution-mode dispatch between the discrete-event simulator and native
   [Domain]-based execution.

   STM engines and benchmarks call [tick]/[pause]/[self]/[now] on every
   simulated instruction.  Under [Sim.run] these charge virtual cycles to the
   calling simulated thread and yield to the scheduler when the thread is no
   longer the earliest one; outside a simulation they are (nearly) free
   no-ops, so the very same engine code runs unmodified on real domains.

   The mutable scheduler state below is written only by [Sim] from the single
   simulation domain; native-mode domains never write it.  Mixing a running
   simulation with concurrent native-mode domains in one process is not
   supported. *)

type _ Effect.t += Yield : unit Effect.t

(* Current simulated thread id, or -1 when not inside a simulation. *)
let cur = ref (-1)

(* Per-thread virtual clocks (cycles), owned by the running simulation. *)
let vtimes = ref [||]

(* Virtual time at which the current thread stops being the earliest
   runnable one; ticking past it yields to the scheduler.  [max_int] when
   the current thread is the only one left. *)
let next_deadline = ref max_int

(* Whether the last yield back to the scheduler was a blocked/no-progress
   yield ([pause]/[yield] from a spin loop) rather than a deadline
   preemption from [tick].  Scheduler policies that do not run the
   earliest thread (PCT) read this to demote spinners so a lock owner can
   run; [Sim] clears it before resuming a thread. *)
let blocked_yield = ref false

let in_sim () = !cur >= 0

(* --- simulated-time profiler backend (read by lib/obs) ----------------

   Every charged cycle flows through [tick]/[tick_as]/[pause], so
   accounting here — rather than at the hundreds of engine call sites —
   attributes ALL of simulated time to a phase by construction.  Engines
   declare phase regions with [set_phase] (guarded by [prof_on] at the
   call site); [pause] self-attributes to the spin phase and
   [Backoff.wait_cycles] to the back-off phase via [tick_as].  When
   [prof_on] is false the cost is one load + one predictable branch per
   tick, mirroring the Trace hook discipline.  The profiler charges no
   cycles of its own, so profiled and unprofiled runs take bit-identical
   schedules. *)

let prof_threads = Topology.max_cores
let n_phases = 8 (* power of two for cheap indexing *)
let ph_other = 0 (* application compute between/inside transactions *)
let ph_read = 1
let ph_write = 2
let ph_validate = 3
let ph_commit = 4 (* includes tx begin/end bookkeeping *)
let ph_spin = 5
let ph_backoff = 6
let ph_idle = 7 (* open-system worker waiting for the next arrival *)
let prof_on = ref false

(* OR of the per-access annotation collectors (profiler, trace recording).
   Engine [tx_ops] wrappers test this ONE flag on their read/write fast
   path and only consult [prof_on] / [Trace.enabled] individually behind
   it, so the everything-off cost per access stays a single load + branch
   — the same as the trace-only discipline this layer extends.  Maintained
   by [Trace.start]/[stop] and [Obs.Profile.enable]/[disable]. *)
let hooks_on = ref false

let prof_phase = Array.make prof_threads ph_other
let prof_cycles = Array.make (prof_threads * n_phases) 0

let set_phase tid p = prof_phase.(tid land (prof_threads - 1)) <- p
let get_phase tid = prof_phase.(tid land (prof_threads - 1))
let prof_read ~tid ~phase = prof_cycles.((tid land (prof_threads - 1)) * n_phases + phase)

let prof_reset () =
  Array.fill prof_cycles 0 (Array.length prof_cycles) 0;
  Array.fill prof_phase 0 prof_threads ph_other

let prof_add c n =
  let s = c land (prof_threads - 1) in
  let i = (s * n_phases) + prof_phase.(s) in
  prof_cycles.(i) <- prof_cycles.(i) + n

let prof_add_as c p n =
  let i = ((c land (prof_threads - 1)) * n_phases) + p in
  prof_cycles.(i) <- prof_cycles.(i) + n

(** Charge [n] virtual cycles to the calling simulated thread; no-op in
    native mode.  May transfer control to another simulated thread. *)
let tick n =
  let c = !cur in
  if c >= 0 then begin
    if !prof_on then prof_add c n;
    let v = !vtimes in
    v.(c) <- v.(c) + n;
    if v.(c) > !next_deadline then Effect.perform Yield
  end

(** Like [tick], but attributes the cycles to phase [p] regardless of the
    thread's current phase (used by the back-off wait). *)
let tick_as p n =
  let c = !cur in
  if c >= 0 then begin
    if !prof_on then prof_add_as c p n;
    let v = !vtimes in
    v.(c) <- v.(c) + n;
    if v.(c) > !next_deadline then Effect.perform Yield
  end

(** Advance the calling simulated thread's clock to virtual time [t]
    (no-op if already past it, or in native mode).  The charged cycles are
    attributed to the idle phase: this is an open-system worker waiting
    for the next request arrival, not doing transactional work.  Used by
    the service harness; makes offered load independent of service rate. *)
let idle_until t =
  let c = !cur in
  if c >= 0 then begin
    let d = t - (!vtimes).(c) in
    if d > 0 then tick_as ph_idle d
  end

(** Yield unconditionally (used by spin loops that made no progress). *)
let yield () =
  if !cur >= 0 then begin
    blocked_yield := true;
    Effect.perform Yield
  end

(* Thread id for native mode, assigned by the workload harness. *)
let native_tid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let set_native_tid tid = Domain.DLS.set native_tid tid

(** Logical thread id: simulated thread id inside a simulation, otherwise
    the id registered with [set_native_tid] (0 by default). *)
let self () =
  let c = !cur in
  if c >= 0 then c else Domain.DLS.get native_tid

(** Virtual time of the calling simulated thread; 0 in native mode. *)
let now () =
  let c = !cur in
  if c >= 0 then (!vtimes).(c) else 0

(** One spin-wait iteration: charges [Costs.pause] cycles in a simulation,
    issues a CPU relax hint natively. *)
let pause () =
  let c = !cur in
  if c >= 0 then begin
    let p = (Costs.get ()).pause in
    if !prof_on then prof_add_as c ph_spin p;
    let v = !vtimes in
    v.(c) <- v.(c) + p;
    (* A spinning thread must always let the lock owner run, even when the
       spinner is still the earliest thread. *)
    blocked_yield := true;
    Effect.perform Yield
  end
  else Domain.cpu_relax ()
