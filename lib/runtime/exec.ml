(* Execution-mode dispatch between the discrete-event simulator and native
   [Domain]-based execution.

   STM engines and benchmarks call [tick]/[pause]/[self]/[now] on every
   simulated instruction.  Under [Sim.run] these charge virtual cycles to the
   calling simulated thread and yield to the scheduler when the thread is no
   longer the earliest one; outside a simulation they are (nearly) free
   no-ops, so the very same engine code runs unmodified on real domains.

   The mutable scheduler state below is written only by [Sim] from the single
   simulation domain; native-mode domains never write it.  Mixing a running
   simulation with concurrent native-mode domains in one process is not
   supported. *)

type _ Effect.t += Yield : unit Effect.t

(* Current simulated thread id, or -1 when not inside a simulation. *)
let cur = ref (-1)

(* Per-thread virtual clocks (cycles), owned by the running simulation. *)
let vtimes = ref [||]

(* Virtual time at which the current thread stops being the earliest
   runnable one; ticking past it yields to the scheduler.  [max_int] when
   the current thread is the only one left. *)
let next_deadline = ref max_int

(* Whether the last yield back to the scheduler was a blocked/no-progress
   yield ([pause]/[yield] from a spin loop) rather than a deadline
   preemption from [tick].  Scheduler policies that do not run the
   earliest thread (PCT) read this to demote spinners so a lock owner can
   run; [Sim] clears it before resuming a thread. *)
let blocked_yield = ref false

let in_sim () = !cur >= 0

(** Charge [n] virtual cycles to the calling simulated thread; no-op in
    native mode.  May transfer control to another simulated thread. *)
let tick n =
  let c = !cur in
  if c >= 0 then begin
    let v = !vtimes in
    v.(c) <- v.(c) + n;
    if v.(c) > !next_deadline then Effect.perform Yield
  end

(** Yield unconditionally (used by spin loops that made no progress). *)
let yield () =
  if !cur >= 0 then begin
    blocked_yield := true;
    Effect.perform Yield
  end

(* Thread id for native mode, assigned by the workload harness. *)
let native_tid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let set_native_tid tid = Domain.DLS.set native_tid tid

(** Logical thread id: simulated thread id inside a simulation, otherwise
    the id registered with [set_native_tid] (0 by default). *)
let self () =
  let c = !cur in
  if c >= 0 then c else Domain.DLS.get native_tid

(** Virtual time of the calling simulated thread; 0 in native mode. *)
let now () =
  let c = !cur in
  if c >= 0 then (!vtimes).(c) else 0

(** One spin-wait iteration: charges [Costs.pause] cycles in a simulation,
    issues a CPU relax hint natively. *)
let pause () =
  let c = !cur in
  if c >= 0 then begin
    let v = !vtimes in
    v.(c) <- v.(c) + (Costs.get ()).pause;
    (* A spinning thread must always let the lock owner run, even when the
       spinner is still the earliest thread. *)
    blocked_yield := true;
    Effect.perform Yield
  end
  else Domain.cpu_relax ()
