(* Per-core work-stealing deques for transactional tasks (DESIGN.md §16).

   The shape is Manticore's vproc scheduler: every simulated core owns a
   deque of thunks; the owner pushes and pops at the bottom (LIFO, keeps
   the working set warm), thieves take from the top (FIFO, steals the
   oldest — largest — task).  The simulator is single-threaded, so no
   synchronisation is needed: determinism comes for free, and the *costs*
   of stealing are what we model —

   - popping the own deque is a local access ([costs.mem]);
   - probing a victim's deque touches a remote line: [miss_socket] for a
     same-socket victim, [miss_cross] otherwise;
   - a successful steal pays one more transfer of the same distance for
     the task itself, and is counted against the thief's socket
     ([Topology.count_steal]) and announced on [on_steal] so layers above
     (the CM via [Cm_intf.note_steal], Obs) can see migrations.

   Victim order is a seeded per-core rotation: each failed acquire draws
   one offset from the thief core's private stream and probes the other
   cores in circular order from there — deterministic given the seed,
   decorrelated across cores. *)

type task = unit -> unit

type deque = {
  mutable buf : task array;
  mutable top : int;  (** index of the oldest task (steal end) *)
  mutable bottom : int;  (** index one past the newest task (owner end) *)
}

type t = {
  cores : int;
  deques : deque array;
  rngs : Rng.t array;  (** per-core victim-selection streams *)
  mutable pending : int;  (** tasks pushed and not yet taken, all deques *)
  mutable steal_count : int;
  mutable probe_count : int;
}

let none : task = fun () -> ()

let make_deque () = { buf = Array.make 64 none; top = 0; bottom = 0 }

let create ?(seed = 0) ~cores () =
  if cores <= 0 || cores > Topology.max_cores then
    invalid_arg "Steal.create: bad core count";
  {
    cores;
    deques = Array.init cores (fun _ -> make_deque ());
    rngs = Array.init cores (fun c -> Rng.for_thread ~seed ~tid:c);
    pending = 0;
    steal_count = 0;
    probe_count = 0;
  }

let pending t = t.pending
let steals t = t.steal_count
let probes t = t.probe_count

(* Announced on every successful steal; installed by the harness layer to
   surface migrations to the contention manager and to Obs.  Must not
   charge cycles (the steal itself already did). *)
let on_steal : (thief:int -> victim:int -> unit) ref =
  ref (fun ~thief:_ ~victim:_ -> ())

let grow d =
  let n = Array.length d.buf in
  let live = d.bottom - d.top in
  let buf = Array.make (2 * n) none in
  Array.blit d.buf d.top buf 0 live;
  d.buf <- buf;
  d.top <- 0;
  d.bottom <- live

let push t ~core task =
  let d = t.deques.(core) in
  if d.bottom = Array.length d.buf then
    if d.top > 0 then begin
      (* Compact instead of growing when the dead prefix suffices. *)
      let live = d.bottom - d.top in
      Array.blit d.buf d.top d.buf 0 live;
      Array.fill d.buf live (Array.length d.buf - live) none;
      d.top <- 0;
      d.bottom <- live
    end
    else grow d;
  d.buf.(d.bottom) <- task;
  d.bottom <- d.bottom + 1;
  t.pending <- t.pending + 1

let[@inline] size d = d.bottom - d.top

(* Owner end: newest task, local cost.  The removal happens BEFORE the
   cycle charge: [Exec.tick] may yield to another simulated thread, and a
   thief running in that window must not see a task the owner already
   committed to taking (the lost-update would break the deque's
   [top <= bottom] invariant). *)
let pop_own t ~core =
  let d = t.deques.(core) in
  if size d = 0 then None
  else begin
    d.bottom <- d.bottom - 1;
    let task = d.buf.(d.bottom) in
    d.buf.(d.bottom) <- none;
    t.pending <- t.pending - 1;
    Exec.tick (Costs.get ()).mem;
    Some task
  end

(* Thief end: oldest task of [victim], remote cost already charged by the
   caller's probe. *)
let take_top t ~victim =
  let d = t.deques.(victim) in
  let task = d.buf.(d.top) in
  d.buf.(d.top) <- none;
  d.top <- d.top + 1;
  t.pending <- t.pending - 1;
  task

let[@inline] probe_cost (costs : Costs.t) ~thief_socket ~victim_socket =
  if thief_socket = victim_socket then costs.miss_socket else costs.miss_cross

(* A stealing round probes at most this many victims.  Scanning all
   cores-1 deques per round is neither what real thieves do (random
   bounded probing) nor affordable: at 512 cores an idle worker would
   charge 511 remote misses per fruitless round, and probe costs would
   dwarf the work being balanced. *)
let max_probes_per_round = 32

(* One stealing round: probe up to [max_probes_per_round] other cores, in
   a seeded circular rotation, charging each probe by distance; take from
   the first non-empty victim.  [None] after a fruitless round. *)
let try_steal t ~core =
  if t.cores = 1 then None
  else begin
    let costs = Costs.get () in
    let my_socket = Topology.socket_of_core core in
    let start = Rng.int t.rngs.(core) (t.cores - 1) in
    let budget = Stdlib.min (t.cores - 1) max_probes_per_round in
    let result = ref None in
    let i = ref 0 in
    while !result = None && !i < budget do
      (* Offsets 1..cores-1 rotated by [start]: every other core exactly
         once, never self. *)
      let off = 1 + ((start + !i) mod (t.cores - 1)) in
      let v = (core + off) mod t.cores in
      t.probe_count <- t.probe_count + 1;
      Exec.tick (probe_cost costs ~thief_socket:my_socket
                   ~victim_socket:(Topology.socket_of_core v));
      if size t.deques.(v) > 0 then begin
        (* Take first, then charge the transfer (one more move over the
           same distance): the tick may yield, and a concurrent thief
           must not race us for the task we already removed. *)
        let task = take_top t ~victim:v in
        t.steal_count <- t.steal_count + 1;
        Topology.count_steal ~socket:my_socket;
        !on_steal ~thief:core ~victim:v;
        Exec.tick (probe_cost costs ~thief_socket:my_socket
                     ~victim_socket:(Topology.socket_of_core v));
        result := Some task
      end
      else incr i
    done;
    !result
  end

(* Own deque first, then one stealing round. *)
let acquire t ~core =
  match pop_own t ~core with Some _ as r -> r | None -> try_steal t ~core
