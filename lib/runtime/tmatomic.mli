(** Atomic integer cells with a cache-coherence cost model.

    Operations are real [Atomic] operations (safe under native domains);
    inside a simulation they additionally charge virtual cycles through a
    MESI-style line model with a queuing penalty on hot lines — the
    mechanism behind the paper's hot-spot results (Figures 10 and 11).

    Cells created with {!make_shared} share one modelled cache line, like
    SwissTM's adjacent r/w lock pair or RSTM's object header.

    Under a multi-socket {!Topology} misses are distance-keyed
    (local / same-socket / cross-socket, with a directory queuing penalty
    at the line's first-touch home socket); under the default flat
    topology the model is bit-identical to the pre-topology one.  The
    reader set is exact up to [Topology.max_cores] threads. *)

type line
type t

val fresh_line : unit -> line
val make : int -> t
val make_shared : line -> int -> t

val get : t -> int
val set : t -> int -> unit

val cas : t -> expect:int -> replace:int -> bool
(** Charges the full RMW cost whether or not it succeeds. *)

val fetch_and_add : t -> int -> int
(** Returns the previous value. *)

val incr_get : t -> int
(** Atomically increment; returns the new value. *)

val unsafe_get : t -> int
(** Cost-free read for setup/verification code. *)

val unsafe_set : t -> int -> unit
(** Cost-free write for setup/verification code. *)

val reset_line : t -> unit
(** Restore the modelled cache line to its freshly-allocated state, so a
    pooled cell charges the same costs as a new one.  Only meaningful for
    cells with a private line (not [make_shared] siblings). *)
