(** Back-off policies used by contention managers after a rollback. *)

type policy =
  | No_backoff
  | Linear of { base : int; cap : int }
      (** uniform in [0, min cap (base * attempt)] — SwissTM's randomized
          linear back-off (Algorithm 2, line 11) *)
  | Exponential of { base : int; cap : int }
      (** uniform in [0, min cap (base * 2^attempt)] — Polka-style *)

val default_linear : policy

val default_exponential : policy
(** Capped high enough to out-wait the longest transactions, which is what
    lets kill-based managers escape mutual-abort livelocks. *)

val delay : policy -> Rng.t -> attempt:int -> int
(** Cycles to wait before the [attempt]-th retry (1-based). *)

val wait_cycles : int -> unit
(** Wait: virtual time in a simulation, bounded spinning natively. *)

val wait : policy -> Rng.t -> attempt:int -> unit

val on_wait : (cycles:int -> unit) ref
(** Observability hook, fired with every non-zero back-off wait when
    {!on_wait_enabled} is set (installed by [lib/obs]).  The hook must
    charge no cycles of its own. *)

val on_wait_enabled : bool ref
