(* SplitMix64 pseudo-random generator.

   Each simulated thread owns one generator, seeded deterministically from
   (global seed, thread id), so every experiment is reproducible and
   independent of scheduling.  The stdlib [Random] module is avoided because
   its global state would make runs depend on call order across threads. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* SplitMix64 finalizer: a bijective avalanche of the whole word. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Derive a thread-local generator from a global seed and a thread id.
    The seed is avalanched through a SplitMix64 finalizer before the
    golden-ratio thread offset is added: combining the raw seed linearly
    would alias distinct (seed, tid) pairs onto one stream (seed s at tid
    t equals seed s+phi at tid t-1). *)
let thread_state ~seed ~tid =
  Int64.add
    (Int64.mul (Int64.of_int (tid + 1)) 0x9E3779B97F4A7C15L)
    (mix64 (Int64.of_int seed))

let for_thread ~seed ~tid = { state = thread_state ~seed ~tid }

(** Reset an existing generator in place to the stream a fresh
    [for_thread ~seed ~tid] would produce.  Descriptor pooling reuses
    txinfo records across engine instances; reseeding keeps a pooled
    descriptor's stream identical to a freshly-created one. *)
let reseed t ~seed ~tid = t.state <- thread_state ~seed ~tid

let next64 t =
  let z = Int64.add t.state 0x9E3779B97F4A7C15L in
  t.state <- z;
  mix64 z

(** Non-negative int drawn uniformly from the full 62-bit range. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

(** [int t n] is uniform in [0, n). Requires [n > 0].

    Rejection sampling: a draw landing in the final partial block of size
    [n] at the top of the 62-bit range is discarded, otherwise the result
    would be biased towards small residues.  At most one extra draw is
    needed in expectation even for the worst bound. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec draw () =
    let x = bits t in
    let r = x mod n in
    (* [x] is accepted iff it falls in a complete block, i.e. the block
       containing it fits below 2^62: x - r + (n-1) must not overflow. *)
    if x - r + (n - 1) < 0 then draw () else r
  in
  draw ()

(** [float t x] is uniform in [0, x). *)
let float t x =
  let f = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  f /. 9007199254740992. *. x

(** Bernoulli draw: true with probability [p]. *)
let chance t p = float t 1.0 < p

(** Fisher-Yates shuffle of an array, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
