(* Deterministic fault injector.

   Robustness machinery (adaptive throttling, irrevocable escalation) only
   earns its keep under pathological conditions that healthy benchmarks
   never produce.  This module manufactures those conditions on demand:

   - *spurious aborts*: a transactional access is condemned as if a remote
     contention manager had killed it;
   - *lock-holder stalls*: a thread that just acquired a lock sits on it
     for a configurable number of cycles, widening every conflict window;
   - *commit stretching*: the commit critical section is lengthened, which
     in lazy engines is exactly the window in which validation failures
     and w/w conflicts are manufactured.

   Engines poll the injector at the same points they poll their kill flag,
   guarded by the single [on] load, so the injector-off fast path costs one
   load + one predictable branch and disarmed runs take bit-identical
   schedules to builds without the injector.

   Determinism: every thread draws from its own SplitMix64 stream seeded
   from (seed, tid), so a thread's fault sequence depends only on its own
   access sequence — in the simulator a given (engine, workload, scheduler
   seed, injector seed) quadruple always produces the same faults.

   The single [exempt] slot implements the irrevocability contract: the one
   transaction that escalated to irrevocable execution must win every
   conflict, and a fault injector that could still condemn it would make
   the no-starvation guarantee unprovable.  [Serial] (lib/stm_intf) sets it
   while a thread holds an engine's irrevocability token. *)

type profile = {
  abort_ppm : int;  (* per-access spurious-abort probability, ppm *)
  stall_ppm : int;  (* per-lock-acquisition stall probability, ppm *)
  stall_cycles : int;  (* length of an injected holder stall *)
  stretch_ppm : int;  (* per-commit stretch probability, ppm *)
  stretch_cycles : int;  (* length of an injected commit stretch *)
}

(* A dense storm: roughly one access in eight condemned, frequent long
   holder stalls.  Strong enough that fixed CM policies exhibit unbounded
   consecutive-abort runs within a few hundred transactions. *)
let abort_storm =
  {
    abort_ppm = 125_000;
    stall_ppm = 50_000;
    stall_cycles = 2_000;
    stretch_ppm = 100_000;
    stretch_cycles = 1_000;
  }

let on = ref false

(* Logical tid of the one thread exempt from injection (irrevocable token
   holder), or -1.  A plain ref: it is written only around token
   acquisition/release, and a racy read in native mode merely delays or
   spares one fault. *)
let exempt = ref (-1)

let max_threads = Topology.max_cores
let cfg = ref abort_storm
let rngs = Array.init max_threads (fun tid -> Rng.for_thread ~seed:0 ~tid)

(* Telemetry (plain sharded counters, zero simulated cycles). *)
let injected_aborts_a = Array.make max_threads 0
let injected_stalls_a = Array.make max_threads 0
let injected_stretches_a = Array.make max_threads 0

let sum = Array.fold_left ( + ) 0
let injected_aborts () = sum injected_aborts_a
let injected_stalls () = sum injected_stalls_a
let injected_stretches () = sum injected_stretches_a

let arm ~seed profile =
  cfg := profile;
  for tid = 0 to max_threads - 1 do
    rngs.(tid) <- Rng.for_thread ~seed ~tid
  done;
  Array.fill injected_aborts_a 0 max_threads 0;
  Array.fill injected_stalls_a 0 max_threads 0;
  Array.fill injected_stretches_a 0 max_threads 0;
  exempt := -1;
  on := true

let disarm () =
  on := false;
  exempt := -1

let slot tid = tid land (max_threads - 1)
let hit tid ppm = ppm > 0 && Rng.int rngs.(slot tid) 1_000_000 < ppm

(* Injected waits are charged like the real thing they model — a stalled
   holder is indistinguishable from a slow one — so they go through the
   normal cycle accounting (spin phase for stalls, commit phase for
   stretches) and perturb schedules exactly as intended. *)
let charge phase cycles =
  if cycles > 0 then begin
    if Exec.in_sim () then Exec.tick_as phase cycles
    else
      for _ = 1 to (cycles + 7) / 8 do
        Domain.cpu_relax ()
      done
  end

(** Should the calling thread's transaction be spuriously condemned at this
    access?  Call only behind [!on]. *)
let spurious_abort ~tid =
  if !exempt = tid then false
  else if hit tid (!cfg).abort_ppm then begin
    let s = slot tid in
    injected_aborts_a.(s) <- injected_aborts_a.(s) + 1;
    true
  end
  else false

(** Maybe stall right after a lock acquisition.  Call only behind [!on]. *)
let stall ~tid =
  if !exempt <> tid && hit tid (!cfg).stall_ppm then begin
    let s = slot tid in
    injected_stalls_a.(s) <- injected_stalls_a.(s) + 1;
    charge Exec.ph_spin (!cfg).stall_cycles
  end

(** Maybe stretch the commit window.  Call only behind [!on]. *)
let stretch ~tid =
  if !exempt <> tid && hit tid (!cfg).stretch_ppm then begin
    let s = slot tid in
    injected_stretches_a.(s) <- injected_stretches_a.(s) + 1;
    charge Exec.ph_commit (!cfg).stretch_cycles
  end
