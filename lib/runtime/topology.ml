(* Machine topology for the simulated multiprocessor.

   The paper's machine is one 4-core die; the scale-out experiments
   (DESIGN.md §16) model a NUMA box: [sockets] packages of
   [cores_per_socket] cores each.  A simulated thread is pinned to core
   [tid mod cores], and cores fill sockets compactly (core c lives on
   socket [c / cores_per_socket]), so small thread counts stay on one
   socket and only genuinely large runs pay cross-socket traffic.

   The default topology is a single socket ("flat"), under which every
   cost in the system is bit-identical to the pre-topology model — that
   degeneracy is what keeps the frozen ≤8-thread gates valid.  Like
   [Costs], the topology is a process-wide setting written only from
   test/bench setup code, never while simulated threads run.

   This module also owns two bits of per-socket mutable state that sit
   below the engines:

   - a directory-style queuing model: consecutive cross-socket misses
     homed at one socket within [dir_window] virtual cycles queue behind
     each other at that socket's directory, the NUMA analogue of
     [Tmatomic]'s per-line queue;

   - per-socket hit/miss/steal counters, incremented (uncharged) from
     the simulation fast paths and surfaced through [Obs.Metrics].  They
     live here rather than in [Obs] because [runtime] cannot depend on
     the layers above it. *)

(* Hard ceiling on simulated cores; [Stm_intf.Stats.max_threads] must not
   exceed it (asserted there, since runtime is below stm_intf). *)
let max_cores = 512
let max_sockets = 64

type t = { sockets : int; cores_per_socket : int }

let flat = { sockets = 1; cores_per_socket = max_cores }

let make ~sockets ~cores_per_socket =
  if sockets <= 0 || cores_per_socket <= 0 then
    invalid_arg "Topology.make: sockets and cores_per_socket must be positive";
  if sockets > max_sockets then
    invalid_arg "Topology.make: too many sockets";
  if sockets * cores_per_socket > max_cores then
    invalid_arg "Topology.make: sockets * cores_per_socket exceeds max_cores";
  { sockets; cores_per_socket }

let cores t = t.sockets * t.cores_per_socket

(* --- per-socket directory + counters ----------------------------------- *)

let dir_last_miss = Array.make max_sockets (-(1 lsl 50))
let dir_queue = Array.make max_sockets 0
let hits = Array.make max_sockets 0
let misses = Array.make max_sockets 0
let steals = Array.make max_sockets 0

let reset_counters () =
  Array.fill hits 0 max_sockets 0;
  Array.fill misses 0 max_sockets 0;
  Array.fill steals 0 max_sockets 0

let reset_directory () =
  Array.fill dir_last_miss 0 max_sockets (-(1 lsl 50));
  Array.fill dir_queue 0 max_sockets 0

(* --- the process-wide topology ----------------------------------------- *)

let current = ref flat

let get () = !current
let is_flat () = !current.sockets = 1

(* Changing the topology resets the directory and the counters: runs under
   different topologies must not share queuing state, or cycle counts
   would depend on what ran before. *)
let set t =
  current := t;
  reset_directory ();
  reset_counters ()

let reset () = set flat

(* --- placement ---------------------------------------------------------- *)

let[@inline] core_of_tid tid =
  let t = !current in
  tid mod (t.sockets * t.cores_per_socket)

let[@inline] socket_of_core core = core / !current.cores_per_socket
let[@inline] socket_of_tid tid = socket_of_core (core_of_tid tid)

(* --- directory queuing -------------------------------------------------- *)

(* Same shape as [Tmatomic]'s per-line queue: misses arriving at one
   home directory within [dir_window] cycles of each other queue behind
   the previous transfer.  The cap is lower than the line cap — a
   directory serves a whole socket, and the per-line queue already
   models the single-line hot-spot collapse. *)
let dir_window = 1000
let dir_max_queue = 8

let dir_charge ~socket ~now =
  if now - dir_last_miss.(socket) < dir_window then
    dir_queue.(socket) <- min (dir_queue.(socket) + 1) dir_max_queue
  else dir_queue.(socket) <- 0;
  dir_last_miss.(socket) <- now;
  dir_queue.(socket)

(* --- counters ----------------------------------------------------------- *)

let[@inline] count_hit ~socket = hits.(socket) <- hits.(socket) + 1
let[@inline] count_miss ~socket = misses.(socket) <- misses.(socket) + 1
let[@inline] count_steal ~socket = steals.(socket) <- steals.(socket) + 1

let socket_counters () =
  let n = !current.sockets in
  Array.init n (fun s -> (hits.(s), misses.(s), steals.(s)))

let pp ppf t =
  Format.fprintf ppf "%d socket%s x %d cores" t.sockets
    (if t.sockets = 1 then "" else "s")
    t.cores_per_socket
