(** Deterministic discrete-event scheduler for simulated threads.

    Each thread body runs as an OCaml 5 fiber and advances a private
    virtual clock through {!Exec.tick}.  Which thread gets resumed is
    decided by a pluggable {!policy}; every policy is a pure function of
    the bodies and its seed, so a run is replayable from
    (policy, seed, program).  See DESIGN.md for how this substitutes for
    the paper's 8-core machine. *)

exception Timeout of int
(** Raised when every live thread passed the [cap_cycles] limit —
    in this codebase, a livelock bug. *)

exception Nested_simulation
(** Raised when [run] is called from inside a simulated thread. *)

type policy =
  | Earliest_first
      (** Resume the earliest thread, ties by id (the default; the only
          policy under which virtual makespans are meaningful). *)
  | Random of { seed : int; window : int; quantum : int }
      (** Pick uniformly among live threads within [window] cycles of the
          minimum clock; run the winner for a random quantum in
          [1, quantum].  Starvation-free: the minimum is always a
          candidate. *)
  | Pct of { seed : int; depth : int; horizon : int }
      (** PCT-style priority schedule: random static priorities,
          [depth - 1] priority-change points over [horizon] cumulative
          virtual cycles; blocked spinners — and threads more than
          [4 * horizon] cycles ahead of the slowest live thread (e.g. an
          abort-retry duel that never blocks) — are demoted so lock
          owners run. *)

val default_policy : policy
(** {!Earliest_first}. *)

val random_policy : ?window:int -> ?quantum:int -> int -> policy
(** [random_policy seed] with defaults window = 5000, quantum = 2000. *)

val pct_policy : ?depth:int -> ?horizon:int -> int -> policy
(** [pct_policy seed] with defaults depth = 3, horizon = 2*10^6. *)

val policy_name : policy -> string
(** Short printable form, e.g. ["earliest"], ["random:42"]. *)

val run :
  ?cap_cycles:int ->
  ?policy:policy ->
  ?dispatch:[ `Heap | `Scan ] ->
  (unit -> unit) array ->
  int array
(** [run bodies] executes all bodies to completion and returns final
    per-thread virtual times (cycles).  [cap_cycles] defaults to 10^12;
    [policy] defaults to {!Earliest_first}.  [dispatch] (default
    [`Heap]) picks the O(log n) indexed-heap dispatcher or the legacy
    O(n) scans; the two are bit-identical (differentially tested), the
    scans exist only as the reference implementation. *)

val run_threads :
  ?cap_cycles:int ->
  ?policy:policy ->
  ?dispatch:[ `Heap | `Scan ] ->
  threads:int ->
  (int -> unit) ->
  int
(** [run_threads ~threads body] runs [body tid] on each thread and returns
    the simulated makespan (max final virtual time). *)

val on_dispatch : (int -> unit) ref
(** Observability hook, fired with the thread id on every scheduler
    dispatch when {!on_dispatch_enabled} is set (installed by [lib/obs]).
    The hook must not charge cycles or touch scheduler state. *)

val on_dispatch_enabled : bool ref
