(* Cycle-level cost model for the simulated multiprocessor.

   Constants approximate a 2009-era 2.4 GHz AMD Opteron (the paper's
   machine): L1-resident accesses cost a few cycles, atomic read-modify-write
   instructions cost tens of cycles, and a cache line bouncing between cores
   costs on the order of a hundred cycles.  Absolute throughput numbers are
   not meant to match the paper; the model only has to preserve the *ratios*
   between cheap local work, synchronisation, and cross-core communication,
   which is what drives every experiment in the evaluation.

   Coherence misses are distance-keyed (DESIGN.md §16): a line refetched
   from the requesting core's own cache hierarchy costs [miss_local], a
   transfer from another core on the same socket costs [miss_socket], and
   a cross-socket transfer costs [miss_cross].  Under the default flat
   (single-socket) topology only [miss_socket] is ever charged, and its
   default equals the old single [cache_miss] constant — the flat model
   is bit-identical to the pre-topology one. *)

type t = {
  mem : int;  (** plain heap word read/write (assumed cache-resident) *)
  atomic_hit : int;  (** atomic load/store, line already local *)
  miss_local : int;
      (** refetch of a line last touched by this very core (L1 victim
          served from the core's own lower levels) *)
  miss_socket : int;
      (** line transferred from another core on the same socket — the old
          flat-model [cache_miss] *)
  miss_cross : int;  (** line transferred from a remote socket *)
  cas : int;  (** extra cost of a CAS / fetch-and-add over a plain access *)
  log_append : int;  (** appending an entry to a read or write log *)
  log_lookup : int;  (** write-log lookup (read-after-write check) *)
  validate_entry : int;  (** re-checking one read-log entry during validation *)
  tx_begin : int;  (** fixed transaction-start overhead *)
  tx_end : int;  (** fixed commit/rollback bookkeeping overhead *)
  pause : int;  (** one iteration of a spin-wait loop *)
  work : int;  (** one unit of application-level compute *)
}

let default =
  {
    mem = 3;
    atomic_hit = 5;
    miss_local = 40;
    miss_socket = 120;
    miss_cross = 300;
    cas = 25;
    log_append = 10;
    log_lookup = 14;
    validate_entry = 7;
    tx_begin = 30;
    tx_end = 30;
    pause = 12;
    work = 1;
  }

(* The model is global and read on every simulated instruction; a plain
   mutable ref keeps the fast path allocation-free.  It is only ever written
   from test/bench setup code, before threads are spawned. *)
let current = ref default
let get () = !current
let set c = current := c
let reset () = current := default

(** Cycles per simulated second; used to convert virtual time into
    transactions-per-second figures comparable with the paper's axes. *)
let cycles_per_second = 2_400_000_000.

let seconds_of_cycles cy = float_of_int cy /. cycles_per_second

let pp ppf c =
  Format.fprintf ppf
    "{mem=%d; atomic_hit=%d; miss_local=%d; miss_socket=%d; miss_cross=%d; \
     cas=%d; log_append=%d; log_lookup=%d; validate_entry=%d; tx_begin=%d; \
     tx_end=%d; pause=%d; work=%d}"
    c.mem c.atomic_hit c.miss_local c.miss_socket c.miss_cross c.cas
    c.log_append c.log_lookup c.validate_entry c.tx_begin c.tx_end c.pause
    c.work

(* Environment override: SWISSTM_COSTS="mem=3,miss_socket=200,cas=30".
   The pre-topology key "cache_miss" is kept as an alias for
   [miss_socket].  Unknown keys are reported on stderr and ignored. *)
let apply_env () =
  match Sys.getenv_opt "SWISSTM_COSTS" with
  | None -> ()
  | Some spec ->
      let c = ref default in
      String.split_on_char ',' spec
      |> List.iter (fun kv ->
             match String.split_on_char '=' (String.trim kv) with
             | [ k; v ] -> (
                 match (k, int_of_string_opt v) with
                 | "mem", Some v -> c := { !c with mem = v }
                 | "atomic_hit", Some v -> c := { !c with atomic_hit = v }
                 | "miss_local", Some v -> c := { !c with miss_local = v }
                 | "miss_socket", Some v -> c := { !c with miss_socket = v }
                 | "cache_miss", Some v -> c := { !c with miss_socket = v }
                 | "miss_cross", Some v -> c := { !c with miss_cross = v }
                 | "cas", Some v -> c := { !c with cas = v }
                 | "log_append", Some v -> c := { !c with log_append = v }
                 | "log_lookup", Some v -> c := { !c with log_lookup = v }
                 | "validate_entry", Some v -> c := { !c with validate_entry = v }
                 | "tx_begin", Some v -> c := { !c with tx_begin = v }
                 | "tx_end", Some v -> c := { !c with tx_end = v }
                 | "pause", Some v -> c := { !c with pause = v }
                 | "work", Some v -> c := { !c with work = v }
                 | _ ->
                     Printf.eprintf "SWISSTM_COSTS: ignoring %S\n%!" kv)
             | _ -> Printf.eprintf "SWISSTM_COSTS: ignoring %S\n%!" kv);
      set !c

let () = apply_env ()
