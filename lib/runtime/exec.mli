(** Execution-mode dispatch between the simulator and native domains.

    Engine and benchmark code calls these on every simulated instruction;
    under {!Sim.run} they charge virtual cycles and cooperate with the
    scheduler, natively they are (nearly) free no-ops. *)

val in_sim : unit -> bool

val tick : int -> unit
(** Charge virtual cycles to the calling simulated thread (no-op natively).
    May switch to another simulated thread. *)

val yield : unit -> unit
(** Yield to the scheduler unconditionally (no-op natively). *)

val self : unit -> int
(** Logical thread id: simulated tid, or the id registered with
    {!set_native_tid} (0 by default). *)

val now : unit -> int
(** Virtual time of the calling simulated thread; 0 natively. *)

val pause : unit -> unit
(** One spin-wait iteration: charges {!Costs.t.pause} and yields in a
    simulation; [Domain.cpu_relax] natively. *)

val set_native_tid : int -> unit
(** Register the calling domain's logical thread id (native mode). *)

(**/**)

(* Scheduler internals shared with {!Sim}; not part of the public API. *)
type _ Effect.t += Yield : unit Effect.t

val cur : int ref
val vtimes : int array ref
val next_deadline : int ref

val blocked_yield : bool ref
(* Set by [pause]/[yield] (a no-progress yield), cleared by [Sim] before
   resuming a thread.  Lets non-earliest-first scheduler policies demote
   spinners instead of livelocking on them. *)
