(** Execution-mode dispatch between the simulator and native domains.

    Engine and benchmark code calls these on every simulated instruction;
    under {!Sim.run} they charge virtual cycles and cooperate with the
    scheduler, natively they are (nearly) free no-ops. *)

val in_sim : unit -> bool

val tick : int -> unit
(** Charge virtual cycles to the calling simulated thread (no-op natively).
    May switch to another simulated thread. *)

val yield : unit -> unit
(** Yield to the scheduler unconditionally (no-op natively). *)

val self : unit -> int
(** Logical thread id: simulated tid, or the id registered with
    {!set_native_tid} (0 by default). *)

val now : unit -> int
(** Virtual time of the calling simulated thread; 0 natively. *)

val pause : unit -> unit
(** One spin-wait iteration: charges {!Costs.t.pause} and yields in a
    simulation; [Domain.cpu_relax] natively. *)

val set_native_tid : int -> unit
(** Register the calling domain's logical thread id (native mode). *)

(** {2 Simulated-time profiler backend}

    Every charged cycle flows through {!tick}/{!tick_as}/{!pause}, so the
    accounting lives here and attributes all of simulated time to a phase
    by construction.  [lib/obs] installs nothing: it flips {!prof_on} and
    reads the matrix back with {!prof_read}.  Engines declare phase
    regions with {!set_phase}, guarding each call with [if !prof_on] so
    the profiler-off fast path costs one load + one predictable branch.
    The profiler charges no cycles of its own: profiled and unprofiled
    runs take bit-identical schedules.  Sim-only ([tick] is a no-op
    natively, so nothing accumulates in native mode). *)

val prof_on : bool ref

val hooks_on : bool ref
(** OR of the per-access annotation collectors (profiler, trace
    recording).  Engine read/write wrappers test only this flag on the
    fast path and consult [prof_on] / [Trace.enabled] individually behind
    it, keeping the everything-off cost at one load + branch per access.
    Maintained by [Trace.start]/[stop] and [Obs.Profile.enable]/
    [disable]; do not flip directly. *)

val prof_threads : int
val n_phases : int

val ph_other : int
(** Application compute (the phase engines restore on leaving an op). *)

val ph_read : int
val ph_write : int
val ph_validate : int

val ph_commit : int
(** Commit processing, including tx begin/end bookkeeping overhead. *)

val ph_spin : int
(** Charged automatically by {!pause}. *)

val ph_backoff : int
(** Charged automatically by [Backoff.wait_cycles] via {!tick_as}. *)

val ph_idle : int
(** Open-system worker idling until the next request arrival (charged by
    {!idle_until}). *)

val set_phase : int -> int -> unit
(** [set_phase tid phase] — callers must guard with [if !prof_on]. *)

val get_phase : int -> int

val tick_as : int -> int -> unit
(** [tick_as phase n] charges like {!tick} but attributes to [phase]
    regardless of the calling thread's current phase. *)

val idle_until : int -> unit
(** Advance the calling simulated thread's virtual clock to the given
    absolute time, attributing the gap to {!ph_idle} (no-op if the clock
    is already past it, or natively).  The service harness uses this to
    decouple offered load from service rate: a worker with no pending
    request sleeps until the next arrival. *)

val prof_read : tid:int -> phase:int -> int
(** Accumulated cycles for one (thread, phase) cell. *)

val prof_reset : unit -> unit
(** Zero the matrix and reset every thread's phase to {!ph_other}. *)

(**/**)

(* Scheduler internals shared with {!Sim}; not part of the public API. *)
type _ Effect.t += Yield : unit Effect.t

val cur : int ref
val vtimes : int array ref
val next_deadline : int ref

val blocked_yield : bool ref
(* Set by [pause]/[yield] (a no-progress yield), cleared by [Sim] before
   resuming a thread.  Lets non-earliest-first scheduler policies demote
   spinners instead of livelocking on them. *)
