(* STAMP vacation: travel-reservation database.

   Three resource relations (cars, rooms, flights: id -> record
   [total; avail; price]) plus a customer relation (id -> reservation
   list), all in transactional data structures.  Each client session is
   one transaction:

   - make_reservation: query [queries] random items across the three
     resource tables, pick the cheapest available one of a random kind,
     reserve it (decrement availability, append to the customer's list);
   - delete_customer: release every reservation the customer holds;
   - update_tables: add/remove availability of random items.

   Contention level follows STAMP: *high* = sessions query a narrow slice
   of the tables with more queries per session; *low* = wide range, fewer
   queries.

   Invariant checked at the end: for every resource,
   total = available + (reservations held by customers). *)

type params = {
  relations : int;  (** rows per resource table *)
  customers : int;
  sessions : int;  (** total transactions to run *)
  queries : int;  (** items examined per reservation session *)
  range_pct : int;  (** % of the table a session's queries span *)
  mix_reserve : int;  (** %; remainder split between delete and update *)
  seed : int;
}

let high_contention =
  {
    relations = 256;
    customers = 128;
    sessions = 1024;
    queries = 8;
    range_pct = 10;
    mix_reserve = 80;
    seed = 0xACA;
  }

let low_contention =
  {
    relations = 256;
    customers = 128;
    sessions = 1024;
    queries = 4;
    range_pct = 90;
    mix_reserve = 80;
    seed = 0xACA;
  }

(* resource record layout: [total; avail; price] *)
let r_total = 0
let r_avail = 1
let r_price = 2
let record_words = 3

let n_kinds = 3 (* cars, rooms, flights *)

type t = {
  params : params;
  heap : Memory.Heap.t;
  tables : Txds.Tx_hashmap.t array;  (** per kind: id -> record address *)
  customer_lists : Txds.Tx_list.t array;  (** customer id -> (key, kind) list *)
  next_session : Runtime.Tmatomic.t;
}

let setup ?(params = high_contention) () =
  let p = params in
  let rng = Runtime.Rng.create p.seed in
  let heap =
    Memory.Heap.create
      ~words:
        ((n_kinds * p.relations * 16 * (record_words + Txds.Tx_hashmap.node_words))
        + (p.customers * 4 * Txds.Tx_list.node_words * 32)
        + (1 lsl 19))
  in
  let direct =
    {
      Stm_intf.Engine.read = (fun a -> Memory.Heap.read heap a);
      write = (fun a v -> Memory.Heap.write heap a v);
      alloc = (fun n -> Memory.Heap.alloc heap n);
      free = (fun a n -> Memory.Heap.free heap a n);
    }
  in
  let tables =
    Array.init n_kinds (fun _ ->
        let tbl = Txds.Tx_hashmap.create heap ~buckets:512 in
        for id = 1 to p.relations do
          let rec_ = Memory.Heap.alloc heap record_words in
          let total = 5 + Runtime.Rng.int rng 10 in
          Memory.Heap.write heap (rec_ + r_total) total;
          Memory.Heap.write heap (rec_ + r_avail) total;
          Memory.Heap.write heap (rec_ + r_price) (50 + Runtime.Rng.int rng 450);
          ignore (Txds.Tx_hashmap.add tbl direct id rec_ : bool)
        done;
        tbl)
  in
  let customer_lists =
    Array.init (p.customers + 1) (fun _ -> Txds.Tx_list.create heap)
  in
  {
    params = p;
    heap;
    tables;
    customer_lists;
    next_session = Runtime.Tmatomic.make 0;
  }

(* Reservation list entries encode (kind, id) in the key. *)
let encode_res ~kind ~id = (id * n_kinds) + kind
let decode_res k = (k mod n_kinds, k / n_kinds)

let pick_id t rng =
  let p = t.params in
  let span = max 1 (p.relations * p.range_pct / 100) in
  1 + Runtime.Rng.int rng span

let make_reservation t tx rng =
  let p = t.params in
  let customer = 1 + Runtime.Rng.int rng p.customers in
  (* Query phase: examine [queries] random rows, remember the cheapest
     available row of a randomly preferred kind. *)
  let best = ref None in
  for _ = 1 to p.queries do
    let kind = Runtime.Rng.int rng n_kinds in
    let id = pick_id t rng in
    match Txds.Tx_hashmap.find t.tables.(kind) tx id with
    | None -> ()
    | Some rec_ ->
        let avail = Stm_intf.Engine.read tx (rec_ + r_avail) in
        let price = Stm_intf.Engine.read tx (rec_ + r_price) in
        Runtime.Exec.tick ((Runtime.Costs.get ()).work * 4);
        if avail > 0 then
          match !best with
          | Some (_, _, _, bp) when bp <= price -> ()
          | _ -> best := Some (kind, id, rec_, price)
  done;
  match !best with
  | None -> false
  | Some (kind, id, rec_, _) ->
      let avail = Stm_intf.Engine.read tx (rec_ + r_avail) in
      if avail <= 0 then false
      else if
        (* Insert first: a customer already holding this resource keeps a
           single reservation and must not decrement availability twice. *)
        Txds.Tx_list.insert tx t.customer_lists.(customer)
          (encode_res ~kind ~id)
          1
      then begin
        Stm_intf.Engine.write tx (rec_ + r_avail) (avail - 1);
        true
      end
      else false

let delete_customer t tx rng =
  let customer = 1 + Runtime.Rng.int rng t.params.customers in
  let lst = t.customer_lists.(customer) in
  let rec drain released =
    match Txds.Tx_list.pop_min tx lst with
    | None -> released
    | Some (key, _count) ->
        let kind, id = decode_res key in
        (match Txds.Tx_hashmap.find t.tables.(kind) tx id with
        | Some rec_ ->
            Stm_intf.Engine.write tx (rec_ + r_avail)
              (Stm_intf.Engine.read tx (rec_ + r_avail) + 1)
        | None -> ());
        drain (released + 1)
  in
  drain 0 > 0

let update_tables t tx rng =
  let p = t.params in
  let updates = 1 + Runtime.Rng.int rng 3 in
  for _ = 1 to updates do
    let kind = Runtime.Rng.int rng n_kinds in
    let id = pick_id t rng in
    match Txds.Tx_hashmap.find t.tables.(kind) tx id with
    | None -> ()
    | Some rec_ ->
        (* Re-price the resource (STAMP's update operation). *)
        Stm_intf.Engine.write tx (rec_ + r_price) (50 + Runtime.Rng.int rng 450)
  done;
  ignore p;
  true

let step t engine ~tid rngs =
  let i = Runtime.Tmatomic.fetch_and_add t.next_session 1 in
  if i >= t.params.sessions then false
  else begin
    let rng = rngs.(tid) in
    let dice = Runtime.Rng.int rng 100 in
    let state = Runtime.Rng.bits rng in
    ignore
      (Stm_intf.Engine.atomic engine ~tid (fun tx ->
           let rng = Runtime.Rng.create state in
           if dice < t.params.mix_reserve then make_reservation t tx rng
           else if dice < t.params.mix_reserve + 10 then delete_customer t tx rng
           else update_tables t tx rng)
        : bool);
    true
  end

(** Run all sessions; verified when the availability invariant holds for
    every resource row. *)
let run ?(params = high_contention) ~spec ~threads () =
  let t = setup ~params () in
  let engine = Engines.make spec t.heap in
  let rngs =
    Array.init Stm_intf.Stats.max_threads (fun tid ->
        Runtime.Rng.for_thread ~seed:params.seed ~tid)
  in
  let result =
    Harness.Workload.run_fixed_work engine ~threads (fun ~tid ->
        step t engine ~tid rngs)
  in
  (* Verification: reserved counts per (kind, id) from customer lists must
     equal total - avail in the tables. *)
  let reserved = Hashtbl.create 256 in
  Array.iter
    (fun lst ->
      List.iter
        (fun (key, _count) ->
          Hashtbl.replace reserved key
            (1 + Option.value (Hashtbl.find_opt reserved key) ~default:0))
        (Txds.Tx_list.to_list_quiescent t.heap lst))
    t.customer_lists;
  let ok = ref true in
  for kind = 0 to n_kinds - 1 do
    List.iter
      (fun (id, rec_) ->
        let total = Memory.Heap.read t.heap (rec_ + r_total) in
        let avail = Memory.Heap.read t.heap (rec_ + r_avail) in
        let res =
          Option.value (Hashtbl.find_opt reserved (encode_res ~kind ~id)) ~default:0
        in
        if total <> avail + res then ok := false)
      (Txds.Tx_hashmap.bindings_quiescent t.tables.(kind) t.heap)
  done;
  (result, !ok)
