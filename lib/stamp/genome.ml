(* STAMP genome: gene sequencing by segment matching.

   A random gene over the 4-letter alphabet is sampled into overlapping
   segments (every start position, shuffled).  Phase 1 deduplicates the
   segments into a shared hash set; phase 2 links each unique segment to
   its unique successor (the segment starting one position later) through a
   shared prefix index.  Both phases are transactional with the original's
   hashtable-dominated access pattern: medium transactions, mostly reads,
   a few writes, low-to-moderate contention.

   Segments are at most 30 letters so a segment packs exactly into one
   63-bit word (2 bits per letter + a length tag), replacing the C
   version's string hashing with exact integer keys.

   Verification walks the successor chain from the gene's first segment and
   checks that it reconstructs the gene. *)

type params = { gene_length : int; segment_length : int; seed : int }

let default = { gene_length = 2048; segment_length = 12; seed = 0x6E0 }

let encode seg = Array.fold_left (fun acc c -> (acc lsl 2) lor c) 1 seg

let segment_at gene ~pos ~len = encode (Array.sub gene pos len)

type t = {
  params : params;
  gene : int array;
  heap : Memory.Heap.t;
  segments : int array;  (** shuffled encoded segments (with duplicates) *)
  unique : Txds.Tx_hashmap.t;  (** segment -> 1 (dedup set) *)
  by_prefix : Txds.Tx_hashmap.t;  (** (length-1)-prefix -> segment *)
  succ : Txds.Tx_hashmap.t;  (** segment -> successor segment *)
  next_work : Runtime.Tmatomic.t;
  phase : Runtime.Tmatomic.t;
}

let setup ?(params = default) () =
  let p = params in
  if p.segment_length > 30 then invalid_arg "genome: segment too long";
  let rng = Runtime.Rng.create p.seed in
  let gene = Array.init p.gene_length (fun _ -> Runtime.Rng.int rng 4) in
  let n_positions = p.gene_length - p.segment_length + 1 in
  (* Oversample (x2 coverage) to create duplicates, as in the original. *)
  let segments =
    Array.init (2 * n_positions) (fun i ->
        segment_at gene ~pos:(i mod n_positions) ~len:p.segment_length)
  in
  Runtime.Rng.shuffle rng segments;
  let heap =
    Memory.Heap.create
      ~words:((Array.length segments * 8 * Txds.Tx_hashmap.node_words) + (1 lsl 18))
  in
  {
    params = p;
    gene;
    heap;
    segments;
    unique = Txds.Tx_hashmap.create heap ~buckets:4096;
    by_prefix = Txds.Tx_hashmap.create heap ~buckets:4096;
    succ = Txds.Tx_hashmap.create heap ~buckets:4096;
    next_work = Runtime.Tmatomic.make 0;
    phase = Runtime.Tmatomic.make 0;
  }

let prefix_of t seg =
  (* drop the last letter, keep the tag *)
  ignore t;
  seg lsr 2

let suffix_of t seg =
  let p = t.params in
  let body = seg land ((1 lsl (2 * p.segment_length)) - 1) in
  (1 lsl (2 * (p.segment_length - 1))) lor (body land ((1 lsl (2 * (p.segment_length - 1))) - 1))

(* Phase 1: dedup all segments into [unique] and index them by prefix. *)
let phase1_step t engine ~tid =
  let i = Runtime.Tmatomic.fetch_and_add t.next_work 1 in
  if i >= Array.length t.segments then false
  else begin
    let seg = t.segments.(i) in
    Stm_intf.Engine.atomic engine ~tid (fun tx ->
        if Txds.Tx_hashmap.add t.unique tx seg 1 then
          ignore (Txds.Tx_hashmap.add t.by_prefix tx (prefix_of t seg) seg : bool));
    true
  end

(* Phase 2: link each unique segment to its successor via the prefix
   index: successor = the segment whose prefix equals our suffix. *)
let phase2_step t engine ~tid =
  let n_positions = t.params.gene_length - t.params.segment_length + 1 in
  let i = Runtime.Tmatomic.fetch_and_add t.next_work 1 in
  if i >= n_positions then false
  else begin
    let seg = segment_at t.gene ~pos:i ~len:t.params.segment_length in
    Stm_intf.Engine.atomic engine ~tid (fun tx ->
        match Txds.Tx_hashmap.find t.by_prefix tx (suffix_of t seg) with
        | Some next -> ignore (Txds.Tx_hashmap.add t.succ tx seg next : bool)
        | None -> ());
    true
  end

(** Run both phases; returns (result over both phases, verified). *)
let run ?(params = default) ~spec ~threads () =
  let t = setup ~params () in
  let engine = Engines.make spec t.heap in
  let r1 = Harness.Workload.run_fixed_work engine ~threads (phase1_step t engine) in
  Runtime.Tmatomic.unsafe_set t.next_work 0;
  let r2 = Harness.Workload.run_fixed_work engine ~threads (phase2_step t engine) in
  (* Verification: follow the successor chain from the first segment and
     compare against the gene. *)
  let p = t.params in
  let direct =
    {
      Stm_intf.Engine.read = (fun a -> Memory.Heap.read t.heap a);
      write = (fun a v -> Memory.Heap.write t.heap a v);
      alloc = (fun n -> Memory.Heap.alloc t.heap n);
      free = (fun a n -> Memory.Heap.free t.heap a n);
    }
  in
  let ok = ref true in
  let seg = ref (segment_at t.gene ~pos:0 ~len:p.segment_length) in
  let n_positions = p.gene_length - p.segment_length + 1 in
  for pos = 1 to n_positions - 1 do
    (match Txds.Tx_hashmap.find t.succ direct !seg with
    | Some next ->
        if next <> segment_at t.gene ~pos ~len:p.segment_length then
          (* A repeated (length-1)-substring can legally link to a different
             occurrence; accept any segment matching our suffix. *)
          if prefix_of t next <> suffix_of t !seg then ok := false;
        seg := next
    | None -> ok := false)
  done;
  let combined =
    {
      r2 with
      Harness.Workload.elapsed_cycles = r1.elapsed_cycles + r2.elapsed_cycles;
      ops = r1.ops + r2.ops;
      stats = Stm_intf.Stats.add r1.stats r2.stats;
    }
  in
  (combined, !ok)
