(* STAMP yada: Delaunay mesh refinement (Ruppert's algorithm).

   The original refines a triangulation: pick a bad triangle, collect the
   *cavity* of surrounding triangles, retriangulate the cavity (killing
   its triangles, creating slightly more new ones), and requeue any new
   bad triangles.  Real Delaunay geometry is irrelevant to its STM
   behaviour; what matters is the transaction shape: a shared work queue
   pop, a medium read phase discovering a connected cavity in a shared
   mesh, a write burst replacing it, and new work pushed back.

   This kernel keeps exactly that shape on a mesh graph (documented
   substitution, DESIGN.md): triangles are heap records
   [bad_level; alive; nbr0; nbr1; nbr2]; refinement replaces a cavity of
   up to [max_cavity] live triangles with cavity+1 new ones whose bad
   level decreases, so the refinement terminates.

   Verified when the work list is empty and no live triangle is bad. *)

type params = {
  triangles : int;  (** initial mesh size *)
  bad_ratio : float;  (** initially bad fraction *)
  max_level : int;  (** initial badness level (work per bad region) *)
  max_cavity : int;
  seed : int;
}

let default =
  { triangles = 1024; bad_ratio = 0.15; max_level = 3; max_cavity = 4; seed = 0xADA }

let f_level = 0
let f_alive = 1
let f_nbr = 2
let tri_words = 5

type t = {
  params : params;
  heap : Memory.Heap.t;
  worklist : Txds.Tx_list.t;
  created : Runtime.Tmatomic.t;
  refined : Runtime.Tmatomic.t;
}

let setup ?(params = default) () =
  let p = params in
  let rng = Runtime.Rng.create p.seed in
  let heap =
    Memory.Heap.create
      ~words:
        ((p.triangles * tri_words * (p.max_level + 2) * 8)
        + (p.triangles * Txds.Tx_list.node_words * 8)
        + (1 lsl 18))
  in
  let worklist = Txds.Tx_list.create heap in
  let tris =
    Array.init p.triangles (fun _ -> Memory.Heap.alloc heap tri_words)
  in
  let n_bad = ref 0 in
  Array.iteri
    (fun i a ->
      let bad = Runtime.Rng.chance rng p.bad_ratio in
      let level = if bad then 1 + Runtime.Rng.int rng p.max_level else 0 in
      if bad then incr n_bad;
      Memory.Heap.write heap (a + f_level) level;
      Memory.Heap.write heap (a + f_alive) 1;
      (* ring + chords: a connected bounded-degree mesh graph *)
      Memory.Heap.write heap (a + f_nbr) tris.((i + 1) mod p.triangles);
      Memory.Heap.write heap
        (a + f_nbr + 1)
        tris.((i + p.triangles - 1) mod p.triangles);
      Memory.Heap.write heap
        (a + f_nbr + 2)
        tris.(Runtime.Rng.int rng p.triangles))
    tris;
  let direct =
    {
      Stm_intf.Engine.read = (fun a -> Memory.Heap.read heap a);
      write = (fun a v -> Memory.Heap.write heap a v);
      alloc = (fun n -> Memory.Heap.alloc heap n);
      free = (fun a n -> Memory.Heap.free heap a n);
    }
  in
  Array.iter
    (fun a ->
      if Memory.Heap.read heap (a + f_level) > 0 then
        ignore (Txds.Tx_list.insert direct worklist a a : bool))
    tris;
  {
    params = p;
    heap;
    worklist;
    created = Runtime.Tmatomic.make 0;
    refined = Runtime.Tmatomic.make 0;
  }

(* One refinement transaction; returns false when the work list is empty. *)
let refine_one t engine ~tid rng =
  let open Stm_intf.Engine in
  let did =
    atomic engine ~tid (fun tx ->
        match Txds.Tx_list.pop_min tx t.worklist with
        | None -> false
        | Some (_key, tri) ->
            if read tx (tri + f_alive) = 0 || read tx (tri + f_level) = 0 then
              true (* stale work item; nothing to do *)
            else begin
              let level = read tx (tri + f_level) in
              (* Build the cavity: BFS over live neighbours. *)
              let cavity = ref [ tri ] in
              let border = ref [] in
              let seen = Hashtbl.create 16 in
              Hashtbl.add seen tri ();
              let consider n =
                if n <> 0 && not (Hashtbl.mem seen n) then begin
                  Hashtbl.add seen n ();
                  if
                    read tx (n + f_alive) = 1
                    && List.length !cavity < t.params.max_cavity
                  then cavity := n :: !cavity
                  else if read tx (n + f_alive) = 1 then border := n :: !border
                end
              in
              List.iter
                (fun c ->
                  for k = 0 to 2 do
                    consider (read tx (c + f_nbr + k))
                  done)
                !cavity;
              Runtime.Exec.tick
                ((Runtime.Costs.get ()).work * 16 * List.length !cavity);
              (* Kill the cavity. *)
              List.iter (fun c -> write tx (c + f_alive) 0) !cavity;
              (* Create |cavity| + 1 replacement triangles in a ring,
                 stitched to the border. *)
              let n_new = List.length !cavity + 1 in
              let fresh =
                Array.init n_new (fun _ ->
                    let a = alloc tx tri_words in
                    write tx (a + f_alive) 1;
                    a)
              in
              ignore (Runtime.Tmatomic.fetch_and_add t.created n_new);
              let border_arr = Array.of_list !border in
              Array.iteri
                (fun i a ->
                  let lvl =
                    if i = 0 && level > 1 then level - 1
                    else if Runtime.Rng.chance rng 0.08 then 1
                    else 0
                  in
                  write tx (a + f_level) lvl;
                  write tx (a + f_nbr) fresh.((i + 1) mod n_new);
                  write tx (a + f_nbr + 1) fresh.((i + n_new - 1) mod n_new);
                  let third =
                    if Array.length border_arr > 0 then
                      border_arr.(i mod Array.length border_arr)
                    else fresh.((i + 1) mod n_new)
                  in
                  write tx (a + f_nbr + 2) third;
                  if lvl > 0 then
                    ignore (Txds.Tx_list.insert tx t.worklist a a : bool))
                fresh;
              (* Point each border triangle's first dead link at a new one. *)
              Array.iteri
                (fun i b ->
                  let patched = ref false in
                  for k = 0 to 2 do
                    if not !patched then begin
                      let n = read tx (b + f_nbr + k) in
                      if n = 0 || read tx (n + f_alive) = 0 then begin
                        write tx (b + f_nbr + k) fresh.(i mod n_new);
                        patched := true
                      end
                    end
                  done)
                border_arr;
              ignore (Runtime.Tmatomic.fetch_and_add t.refined 1);
              true
            end)
  in
  did

(** Run to an empty work list; verified when no live triangle stays bad. *)
let run ?(params = default) ~spec ~threads () =
  let t = setup ~params () in
  let engine = Engines.make spec t.heap in
  let rngs =
    Array.init Stm_intf.Stats.max_threads (fun tid ->
        Runtime.Rng.for_thread ~seed:params.seed ~tid)
  in
  let result =
    Harness.Workload.run_fixed_work engine ~threads (fun ~tid ->
        refine_one t engine ~tid rngs.(tid))
  in
  let ok = Txds.Tx_list.to_list_quiescent t.heap t.worklist = [] in
  (result, ok)
