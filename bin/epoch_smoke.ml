(* Memory-subsystem smoke (DESIGN.md §12), two native checks:

   [epoch] — use-after-reclaim: a writer domain repeatedly privatizes a
   tagged block (republish the handle, [Heap.free] the old block) while a
   reader domain transactionally follows the handle and checks the block's
   tag is uniform.  Freeing without a grace period would let the allocator
   recycle the block and the writer's non-transactional re-init scribble
   over a snapshot a reader still holds — transactional validation cannot
   catch those writes (this is exactly the privatization problem).  With
   [Memory.Epoch] armed there must be zero mixed-tag observations, the
   global epoch must actually advance, and a final drain must empty limbo.

   [pool] — descriptor recycling: build and drop engines in a loop (with
   major collections so finalizers run) and require the swisstm descriptor
   pool and the kernel [Txdesc] pool to report hits and no double
   releases. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let gauge name =
  match List.assoc_opt name (Obs.Metrics.gauge_values ()) with
  | Some v -> v
  | None -> die "gauge %S not registered" name

(* --- epoch mode -------------------------------------------------------- *)

let block_words = 8
let pubs = 2_000

let epoch_check () =
  let heap = Memory.Heap.create ~words:(1 lsl 16) in
  let spec = Engines.with_table_bits 12 Engines.swisstm_priv_epoch in
  let engine = Engines.make spec heap in
  let handle = Memory.Heap.alloc heap 1 in
  let init_block tag =
    let b = Memory.Heap.alloc heap block_words in
    for i = 0 to block_words - 1 do
      Memory.Heap.write heap (b + i) tag
    done;
    b
  in
  Memory.Heap.write heap handle (init_block 1);
  Memory.Heap.guard_on := true;
  Memory.Epoch.arm ();
  let adv0 = Memory.Epoch.advances () in
  let mixed = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        Runtime.Exec.set_native_tid 0;
        Memory.Epoch.online ~tid:0;
        for tag = 2 to pubs + 1 do
          let fresh = init_block tag in
          let old =
            Stm_intf.Engine.atomic engine ~tid:0 (fun tx ->
                let o = tx.Stm_intf.Engine.read handle in
                tx.Stm_intf.Engine.write handle fresh;
                o)
          in
          Memory.Heap.free heap old block_words
        done;
        Memory.Epoch.offline ~tid:0)
  in
  let reader =
    Domain.spawn (fun () ->
        Runtime.Exec.set_native_tid 1;
        Memory.Epoch.online ~tid:1;
        for _ = 1 to 4 * pubs do
          let uniform =
            Stm_intf.Engine.atomic engine ~tid:1 (fun tx ->
                let b = tx.Stm_intf.Engine.read handle in
                let t0 = tx.Stm_intf.Engine.read b in
                let ok = ref true in
                for i = 1 to block_words - 1 do
                  if tx.Stm_intf.Engine.read (b + i) <> t0 then ok := false
                done;
                !ok)
          in
          if not uniform then Atomic.incr mixed
        done;
        Memory.Epoch.offline ~tid:1)
  in
  Domain.join writer;
  Domain.join reader;
  Memory.Epoch.disarm ();
  let advances = Memory.Epoch.advances () - adv0 in
  if Atomic.get mixed > 0 then
    die "epoch smoke FAIL: %d mixed-tag (use-after-reclaim) observations"
      (Atomic.get mixed);
  if advances = 0 then die "epoch smoke FAIL: global epoch never advanced";
  if Memory.Epoch.limbo_depth () <> 0 then
    die "epoch smoke FAIL: %d blocks left in limbo after drain"
      (Memory.Epoch.limbo_depth ());
  if gauge "heap_double_frees" > 0 then
    die "epoch smoke FAIL: %d double frees" (gauge "heap_double_frees");
  Printf.printf
    "epoch smoke ok: %d publications, 0 mixed-tag reads, %d epoch \
     advances, %d deferred = %d reclaimed\n%!"
    pubs advances
    (Memory.Epoch.deferred ())
    (Memory.Epoch.reclaimed ())

(* --- pool mode --------------------------------------------------------- *)

let pool_check () =
  let heap = Memory.Heap.create ~words:(1 lsl 14) in
  let kernel_spec =
    match Engines.of_string (List.hd Engines.kernel_names) with
    | Some s -> s
    | None -> die "kernel registry empty"
  in
  let addr = Memory.Heap.alloc heap 4 in
  for _ = 1 to 30 do
    List.iter
      (fun spec ->
        let e = Engines.make (Engines.with_table_bits 8 spec) heap in
        Stm_intf.Engine.atomic e ~tid:0 (fun tx ->
            tx.Stm_intf.Engine.write addr
              (tx.Stm_intf.Engine.read addr + 1)))
      [ Engines.swisstm; kernel_spec ];
    (* drop the engines; finalizers return their descriptors to the pools *)
    Gc.full_major ()
  done;
  Gc.full_major ();
  let desc_hits = gauge "desc_pool_hits" in
  let txdesc_hits = gauge "txdesc_pool_hits" in
  if desc_hits = 0 then die "pool smoke FAIL: swisstm descriptor pool never hit";
  if txdesc_hits = 0 then die "pool smoke FAIL: kernel txdesc pool never hit";
  if gauge "desc_pool_double_releases" > 0 then
    die "pool smoke FAIL: %d descriptor double releases"
      (gauge "desc_pool_double_releases");
  if gauge "txdesc_pool_double_releases" > 0 then
    die "pool smoke FAIL: %d txdesc double releases"
      (gauge "txdesc_pool_double_releases");
  Printf.printf "pool smoke ok: desc pool hits %d, txdesc pool hits %d, 0 \
                 double releases\n%!"
    desc_hits txdesc_hits

let () =
  match Sys.argv with
  | [| _ |] ->
      epoch_check ();
      pool_check ()
  | [| _; "epoch" |] -> epoch_check ()
  | [| _; "pool" |] -> pool_check ()
  | _ -> die "usage: epoch_smoke [epoch|pool]"
