(* Print the deterministic behavioral snapshot of every named engine, in
   OCaml-literal form.  Used to (re)capture the frozen values embedded in
   test/test_kernel.ml: run this tool on a known-good tree and paste its
   output over the frozen table.  The test suite replays the same probes
   and compares, so no separate `--check` mode is needed. *)

(* Composed kernel points are printed too when asked ([--all]), but the
   frozen differential table in test/test_kernel.ml covers the dedicated
   engine names only: composed points have no pre-refactor baseline to
   hold.  norec/tlrw joined the frozen set in PR 7 (captured at their
   introduction, so later refactors are held to bit-identical behavior). *)
let classic_names =
  [
    "swisstm"; "swisstm-priv"; "tl2"; "tinystm"; "rstm"; "rstm-lazy";
    "rstm-visible"; "mvstm"; "glock"; "norec"; "tlrw";
  ]

let names =
  if Array.exists (( = ) "--all") Sys.argv then
    classic_names @ Engines.kernel_names
  else classic_names

let () =
  List.iter
    (fun name ->
      let spec =
        match Engines.of_string name with
        | Some s -> Engines.with_table_bits 10 s
        | None -> failwith ("unknown engine " ^ name)
      in
      let s = Check.Snapshot.stats_run spec in
      let t = Check.Snapshot.cycle_trace spec in
      Format.printf "  (\"%s\",@.   %a,@.   %a);@.@." name
        Check.Snapshot.pp_summary s Check.Snapshot.pp_trace t)
    names
