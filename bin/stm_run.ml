(* stm_run — command-line driver for every benchmark × engine combination.

     stm_run rbtree --stm swisstm --threads 4
     stm_run sb7    --workload read --stm tl2 --threads 8
     stm_run lee    --board memory --stm tinystm --threads 2
     stm_run stamp  --app intruder --stm swisstm --threads 8
     stm_run list
     stm_run --profile --metrics              # all-engine demo micro
     stm_run sb7 --trace-out sb7.trace.json   # Chrome/Perfetto trace

   Prints one summary line per run plus the abort/commit breakdown.
   The observability flags (--metrics, --profile, --trace-out) work on
   every benchmark subcommand and on the default all-engine demo.
   `stm_run service` drives the open-system SLO harness (--slo,
   --slo-out, --trace-window). *)

open Cmdliner

let spec_conv =
  let parse s =
    match Engines.of_string s with
    | Some spec -> Ok spec
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown engine %S (expected one of: %s)" s
                (String.concat ", " Engines.known_names)))
  in
  let print ppf spec = Format.pp_print_string ppf (Engines.name spec) in
  Arg.conv (parse, print)

let stm_arg =
  let doc = "STM engine (see `stm_run list`)." in
  Arg.(value & opt spec_conv Engines.swisstm & info [ "stm" ] ~docv:"ENGINE" ~doc)

let threads_arg =
  let doc = "Number of simulated threads." in
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Simulated duration in megacycles (duration-type benchmarks)." in
  Arg.(value & opt int 10 & info [ "duration" ] ~docv:"MCYCLES" ~doc)

(* --- observability ------------------------------------------------------ *)

type obs_opts = { metrics : bool; profile : bool; trace_out : string option }

let obs_term =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry report (latency histograms, abort \
                breakdown, stripe heat map) after the run.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print the simulated-cycle phase breakdown (read / write / \
                validate / commit / spin / backoff) after the run.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record the transactional event stream and write it as Chrome \
                trace_event JSON; open the file in Perfetto \
                (https://ui.perfetto.dev) or chrome://tracing.")
  in
  Term.(
    const (fun metrics profile trace_out -> { metrics; profile; trace_out })
    $ metrics $ profile $ trace_out)

(* Wrap one benchmark run: arm the requested collectors before, report and
   disarm after.  Collectors never charge simulated cycles, so the run's
   cycle numbers match an uninstrumented run bit for bit. *)
let with_obs (o : obs_opts) ~section f =
  if o.metrics then begin
    Obs.Metrics.reset ();
    Obs.Metrics.enable ()
  end;
  if o.profile then begin
    Obs.Profile.reset ();
    Obs.Profile.enable ()
  end;
  if o.trace_out <> None then Stm_intf.Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      (match o.trace_out with
      | Some path ->
          let events = Stm_intf.Trace.stop () in
          Obs.Export.write_file path [ (section, events) ];
          Printf.printf "trace: wrote %s (%d events)\n" path
            (Array.length events)
      | None -> ());
      if o.profile then begin
        Format.printf "%a@." Obs.Profile.pp (Obs.Profile.snapshot ());
        Obs.Profile.disable ()
      end;
      if o.metrics then begin
        Format.printf "%a@." Obs.Metrics.pp ();
        Obs.Metrics.disable ()
      end)
    f

let print_result ~label spec ~threads (r : Harness.Workload.result) =
  Printf.printf
    "%s  engine=%s threads=%d  ops=%d  elapsed=%.3f ms (simulated)  \
     throughput=%.1f ops/s\n"
    label (Engines.name spec) threads r.ops
    (Harness.Workload.elapsed_seconds r *. 1e3)
    (Harness.Workload.throughput r);
  Format.printf "  %a@." Stm_intf.Stats.pp r.stats;
  Printf.printf "  abort rate: %.4f\n" (Harness.Workload.abort_rate r)

(* --- rbtree ------------------------------------------------------------ *)

let rbtree_cmd =
  let run obs spec threads duration update_pct range =
    let params =
      {
        Rbtree.Rbtree_bench.default with
        update_ratio = float_of_int update_pct /. 100.;
        range;
      }
    in
    with_obs obs ~section:(Engines.name spec) (fun () ->
        let r =
          Rbtree.Rbtree_bench.run ~params ~spec ~threads
            ~duration_cycles:(duration * 1_000_000) ()
        in
        print_result ~label:"rbtree" spec ~threads r)
  in
  let update_arg =
    Arg.(value & opt int 20 & info [ "updates" ] ~docv:"PCT" ~doc:"Update percentage.")
  in
  let range_arg =
    Arg.(value & opt int 16384 & info [ "range" ] ~docv:"N" ~doc:"Key range.")
  in
  Cmd.v
    (Cmd.info "rbtree" ~doc:"Red-black tree microbenchmark (paper Figure 5)")
    Term.(
      const run $ obs_term $ stm_arg $ threads_arg $ duration_arg $ update_arg
      $ range_arg)

(* --- STMBench7 ---------------------------------------------------------- *)

let sb7_cmd =
  let run obs spec threads duration workload =
    let workload =
      match workload with
      | "read" -> Stmbench7.Sb7_bench.Read_dominated
      | "read-write" | "rw" -> Stmbench7.Sb7_bench.Read_write
      | "write" -> Stmbench7.Sb7_bench.Write_dominated
      | s -> failwith (Printf.sprintf "unknown workload %S" s)
    in
    with_obs obs ~section:(Engines.name spec) (fun () ->
        let r =
          Stmbench7.Sb7_bench.run ~spec ~workload ~threads
            ~duration_cycles:(duration * 1_000_000) ()
        in
        print_result ~label:"stmbench7" spec ~threads r)
  in
  let workload_arg =
    Arg.(
      value & opt string "read"
      & info [ "workload" ] ~docv:"MIX" ~doc:"read | read-write | write.")
  in
  Cmd.v
    (Cmd.info "sb7" ~doc:"STMBench7 (paper Figure 2)")
    Term.(
      const run $ obs_term $ stm_arg $ threads_arg $ duration_arg $ workload_arg)

(* --- Lee-TM -------------------------------------------------------------- *)

let lee_cmd =
  let run obs spec threads board hot =
    let board =
      match board with
      | "memory" -> Leetm.Board.memory ()
      | "main" -> Leetm.Board.main ()
      | s -> failwith (Printf.sprintf "unknown board %S" s)
    in
    with_obs obs ~section:(Engines.name spec) (fun () ->
        let r, state = Leetm.Router.run ~hot_ratio:hot ~spec ~threads board in
        print_result ~label:(Printf.sprintf "lee-%s" board.name) spec ~threads r;
        Printf.printf "  routed=%d failed=%d connected=%b\n"
          (Leetm.Router.total_routed state)
          (Leetm.Router.total_failed state)
          (Leetm.Router.verify state))
  in
  let board_arg =
    Arg.(value & opt string "memory" & info [ "board" ] ~docv:"B" ~doc:"memory | main.")
  in
  let hot_arg =
    Arg.(
      value & opt float 0.
      & info [ "hot-ratio" ]
          ~doc:"Irregular variant: fraction of routes updating the hot object.")
  in
  Cmd.v
    (Cmd.info "lee" ~doc:"Lee-TM circuit routing (paper Figures 4 and 8)")
    Term.(const run $ obs_term $ stm_arg $ threads_arg $ board_arg $ hot_arg)

(* --- STAMP --------------------------------------------------------------- *)

let stamp_cmd =
  let run obs spec threads app =
    match Stamp.find app with
    | None ->
        failwith
          (Printf.sprintf "unknown app %S (expected one of: %s)" app
             (String.concat ", " Stamp.names))
    | Some w ->
        with_obs obs ~section:(Engines.name spec) (fun () ->
            let r, ok = w.run ~spec ~threads () in
            print_result ~label:(Printf.sprintf "stamp-%s" app) spec ~threads r;
            Printf.printf "  verified=%b\n" ok)
  in
  let app_arg =
    Arg.(value & opt string "intruder" & info [ "app" ] ~docv:"APP" ~doc:"STAMP application.")
  in
  Cmd.v
    (Cmd.info "stamp" ~doc:"STAMP applications (paper Figure 3)")
    Term.(const run $ obs_term $ stm_arg $ threads_arg $ app_arg)

(* --- demo (default command) ---------------------------------------------- *)

(* Every registered engine, by registry name — including the -adaptive
   CM variants, norec/tlrw and the composed kernel points — so the demo
   (and obs-check below) can never silently drop a newly added engine. *)
let demo_specs =
  List.filter_map
    (fun n -> Option.map (fun s -> (n, s)) (Engines.of_string n))
    Engines.known_names

(* Small contended counter-array micro: enough conflicts at 2 threads to
   exercise aborts, backoff and CM decisions on every engine. *)
let demo_micro spec ~threads ~duration_cycles =
  let heap = Memory.Heap.create ~words:(1 lsl 16) in
  let base = Memory.Heap.alloc heap 512 in
  let engine = Engines.make spec heap in
  let step ~tid ~op =
    Stm_intf.Engine.atomic engine ~tid (fun tx ->
        let slot = base + (((op * 7) + (tid * 13)) land 63) in
        let v = tx.Stm_intf.Engine.read slot in
        tx.Stm_intf.Engine.write slot (v + 1);
        ignore (tx.Stm_intf.Engine.read (base + ((op + tid) land 255)) : int))
  in
  Harness.Workload.run_for_duration engine ~threads ~duration_cycles step

let demo obs threads =
  if obs.metrics then begin
    Obs.Metrics.reset ();
    Obs.Metrics.enable ()
  end;
  let sections = ref [] in
  List.iter
    (fun (name, spec) ->
      if obs.profile then begin
        Obs.Profile.reset ();
        Obs.Profile.enable ()
      end;
      if obs.trace_out <> None then Stm_intf.Trace.start ();
      let r = demo_micro spec ~threads ~duration_cycles:300_000 in
      if obs.trace_out <> None then
        sections := (name, Stm_intf.Trace.stop ()) :: !sections;
      Printf.printf "%-28s ops=%-6d elapsed=%d cycles\n" name r.ops
        r.elapsed_cycles;
      Format.printf "  %a@." Stm_intf.Stats.pp r.stats;
      if obs.profile then begin
        Format.printf "%a@." Obs.Profile.pp (Obs.Profile.snapshot ());
        Obs.Profile.disable ()
      end)
    demo_specs;
  (match obs.trace_out with
  | Some path ->
      Obs.Export.write_file path (List.rev !sections);
      Printf.printf "trace: wrote %s\n" path
  | None -> ());
  if obs.metrics then begin
    Format.printf "%a@." Obs.Metrics.pp ();
    Obs.Metrics.disable ()
  end

let demo_term = Term.(const demo $ obs_term $ threads_arg)

(* --- obs-check ------------------------------------------------------------ *)

(* CI smoke for the observability layer: run the demo micro with every
   collector armed, then schema-check everything that came out.  Exits 1
   on any failure. *)
let obs_check_cmd =
  let run () =
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    Obs.Metrics.reset ();
    Obs.Metrics.enable ();
    Obs.Profile.reset ();
    Obs.Profile.enable ();
    let sections = ref [] in
    List.iter
      (fun name ->
        let spec =
          match Engines.of_string name with
          | Some s -> s
          | None -> failwith ("obs-check: unknown engine " ^ name)
        in
        Stm_intf.Trace.start ();
        let r = demo_micro spec ~threads:2 ~duration_cycles:100_000 in
        sections := (name, Stm_intf.Trace.stop ()) :: !sections;
        if r.ops = 0 then fail "%s: demo micro made no progress" name)
      [ "swisstm"; "tl2"; "norec"; "swisstm-adaptive" ];
    Obs.Profile.disable ();
    Obs.Metrics.disable ();
    (* profile: the run must have attributed cycles to named phases *)
    let snap = Obs.Profile.snapshot () in
    if Obs.Profile.total snap = 0 then fail "profile: no cycles attributed";
    (match Obs.Json.member "phases" (Obs.Profile.to_json snap) with
    | Some (Obs.Json.Obj _) -> ()
    | _ -> fail "profile json: missing phases object");
    (* metrics: both engines registered, commits counted *)
    let mj = Obs.Metrics.to_json () in
    (match Obs.Json.member "engines" mj with
    | Some (Obs.Json.List engines) ->
        List.iter
          (fun name ->
            let found =
              List.exists
                (fun e ->
                  match Obs.Json.member "name" e with
                  | Some (Obs.Json.Str n) -> n = name
                  | _ -> false)
                engines
            in
            if not found then fail "metrics json: engine %s missing" name)
          [ "swisstm"; "tl2" ]
    | _ -> fail "metrics json: missing engines list");
    (* gauges: the PR-6 allocator/reclaimer/pool read-outs must stay
       wired into [Metrics.gauge_values] — a missing name means a layer
       below Obs silently lost its registration, and the demo above
       built engines so the descriptor pools must show traffic *)
    let gauges = Obs.Metrics.gauge_values () in
    let gauge name =
      match List.assoc_opt name gauges with
      | Some v -> v
      | None ->
          fail "gauges: %s missing from Metrics.gauge_values" name;
          0
    in
    List.iter
      (fun name -> ignore (gauge name : int))
      [
        "heap_frees"; "heap_free_reuses"; "heap_leaked_frees";
        "heap_double_frees"; "epoch_advances"; "epoch_deferred";
        "epoch_reclaimed"; "epoch_limbo_depth"; "desc_pool_hits";
        "desc_pool_misses"; "desc_pool_double_releases"; "txdesc_pool_hits";
        "txdesc_pool_misses"; "txdesc_pool_double_releases";
      ];
    if gauge "desc_pool_hits" + gauge "desc_pool_misses" = 0 then
      fail "gauges: descriptor pool shows no traffic after engine runs";
    if gauge "txdesc_pool_hits" + gauge "txdesc_pool_misses" = 0 then
      fail "gauges: kernel txdesc pool shows no traffic after engine runs";
    if gauge "heap_double_frees" <> 0 then
      fail "gauges: heap_double_frees = %d (guard tripped)"
        (gauge "heap_double_frees");
    (match Obs.Json.member "gauges" mj with
    | Some (Obs.Json.Obj _) -> ()
    | _ -> fail "metrics json: missing gauges object");
    (* trace: write a real file, parse it back, schema-check *)
    let path = Filename.temp_file "stm_obs_check" ".trace.json" in
    Obs.Export.write_file path (List.rev !sections);
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    Sys.remove path;
    (match Obs.Json.of_string raw with
    | exception Obs.Json.Parse_error e -> fail "trace json unparsable: %s" e
    | j -> (
        match Obs.Export.validate_catapult j with
        | Ok () -> ()
        | Error e -> fail "trace schema: %s" e));
    match !failures with
    | [] ->
        Printf.printf "obs-check: OK (metrics + profile + trace schema)\n"
    | fs ->
        List.iter (Printf.eprintf "obs-check: FAIL %s\n") (List.rev fs);
        exit 1
  in
  Cmd.v
    (Cmd.info "obs-check"
       ~doc:"Smoke-test the observability layer (CI; exits 1 on failure)")
    Term.(const run $ const ())

(* --- service (open-system SLO harness) ------------------------------------ *)

let service_cmd =
  let run spec threads rate duration users keys theta seed slo slo_out
      trace_window trace_out =
    let duration_cycles = duration * 1_000_000 in
    let cfg =
      {
        Harness.Service.default with
        threads;
        users;
        keys;
        theta;
        arrivals = Harness.Arrival.Poisson { per_mcycle = rate };
        duration_cycles;
        window_cycles = max 1 (duration_cycles / 8);
        seed;
        trace_window;
      }
    in
    let r = Harness.Service.run spec cfg in
    Printf.printf
      "service  engine=%s threads=%d  offered=%d completed=%d  \
       elapsed=%d cycles  offered=%.0f/Mcyc goodput=%.0f/Mcyc\n"
      (Engines.name spec) threads r.Harness.Service.offered
      r.Harness.Service.completed r.Harness.Service.elapsed_cycles
      (Harness.Service.offered_per_mcycle r)
      (Harness.Service.goodput_per_mcycle r);
    Format.printf "  %a@." Stm_intf.Stats.pp r.Harness.Service.stats;
    (match r.Harness.Service.summary with
    | Some s ->
        Printf.printf
          "  response cycles: p50=%d p95=%d p99.9=%d max=%d  tail-amp=%.2f\n"
          s.Obs.Slo.s_p50 s.Obs.Slo.s_p95 s.Obs.Slo.s_p999 s.Obs.Slo.s_max
          s.Obs.Slo.s_tail_amplification;
        let tot =
          s.Obs.Slo.s_queue_cycles + s.Obs.Slo.s_abort_cycles
          + s.Obs.Slo.s_backoff_cycles + s.Obs.Slo.s_exec_cycles
        in
        if tot > 0 then
          Printf.printf
            "  attribution: queue %d%%  aborted-work %d%%  backoff %d%%  \
             exec %d%%  (retries %d, escalations %d, throttles %d)\n"
            (100 * s.Obs.Slo.s_queue_cycles / tot)
            (100 * s.Obs.Slo.s_abort_cycles / tot)
            (100 * s.Obs.Slo.s_backoff_cycles / tot)
            (100 * s.Obs.Slo.s_exec_cycles / tot)
            s.Obs.Slo.s_retries s.Obs.Slo.s_escalations s.Obs.Slo.s_throttles
    | None -> ());
    if slo then begin
      Printf.printf "  windows (%d cycles each):\n" cfg.window_cycles;
      Printf.printf "    %-10s %8s %8s %10s %10s %10s %7s %6s\n" "start"
        "offered" "done" "p50" "p95" "p99.9" "retry" "slow";
      List.iter
        (fun (w : Obs.Slo.window) ->
          Printf.printf "    %-10d %8d %8d %10d %10d %10d %7d %6d\n"
            w.w_start w.w_arrivals w.w_completions w.w_p50 w.w_p95 w.w_p999
            w.w_retries w.w_slow)
        r.Harness.Service.windows
    end;
    (match (slo_out, r.Harness.Service.slo_json) with
    | Some path, Some j ->
        let oc = open_out path in
        Obs.Json.to_channel oc j;
        close_out oc;
        Printf.printf "slo: wrote %s\n" path
    | _ -> ());
    match (trace_out, r.Harness.Service.trace) with
    | Some path, Some (label, events) ->
        Obs.Export.write_file path [ (label, events) ];
        Printf.printf "trace: wrote %s (%d events of window %s)\n" path
          (Array.length events) label
    | Some _, None ->
        Printf.printf
          "trace: nothing recorded (pass --trace-window and make sure the \
           run reaches that window)\n"
    | None, _ -> ()
  in
  let rate_arg =
    Arg.(
      value & opt float 700.
      & info [ "rate" ] ~docv:"R"
          ~doc:"Offered load: Poisson arrivals per simulated megacycle.")
  in
  let users_arg =
    Arg.(
      value & opt int 200_000
      & info [ "users" ] ~docv:"N" ~doc:"Simulated user population.")
  in
  let keys_arg =
    Arg.(
      value & opt int 4096
      & info [ "keys" ] ~docv:"N" ~doc:"Inventory size (words).")
  in
  let theta_arg =
    Arg.(
      value & opt float 0.9
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew of key popularity.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Run seed.")
  in
  let slo_arg =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:"Print the per-window SLO table (offered/goodput and response \
                percentiles per window).")
  in
  let slo_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"FILE"
          ~doc:"Write the windowed SLO report as JSON.")
  in
  let trace_window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-window" ] ~docv:"W"
          ~doc:"Record the transactional event stream during SLO window W \
                (combine with --trace-out).")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the traced window as Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Open-system service harness: Poisson arrivals over a \
          session/inventory store, with windowed SLO percentiles and \
          abort-attribution.")
    Term.(
      const run $ stm_arg $ threads_arg $ rate_arg $ duration_arg $ users_arg
      $ keys_arg $ theta_arg $ seed_arg $ slo_arg $ slo_out_arg
      $ trace_window_arg $ trace_out_arg)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "engines:\n";
    List.iter (Printf.printf "  %s\n") Engines.known_names;
    Printf.printf "stamp apps:\n";
    List.iter (Printf.printf "  %s\n") Stamp.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List engines and STAMP applications")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "stm_run" ~version:"1.0"
      ~doc:
        "SwissTM reproduction: run any benchmark under any STM engine.  With \
         no subcommand, runs a contended demo micro across every registered engine \
         (combine with --profile / --metrics / --trace-out)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:demo_term info
          [
             rbtree_cmd;
             sb7_cmd;
             lee_cmd;
             stamp_cmd;
             obs_check_cmd;
             service_cmd;
             list_cmd;
           ]))
