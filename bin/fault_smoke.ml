(* Fault-injection smoke test: under a deterministic abort storm, adaptive
   contention control must bound the worst consecutive-abort run of every
   thread by its escalation budget K, while the fixed policies (timid,
   two-phase) demonstrably fail to.

   The scenario arms [Runtime.Inject.abort_storm] (one access in eight
   condemned, frequent holder stalls and commit stretches) over a hot
   8-thread read-modify-write workload.  A thread under the storm aborts
   ~88% of its attempts, so fixed policies exhibit consecutive-abort runs
   far past K within a few hundred transactions; the adaptive manager
   escalates any thread at K consecutive aborts to irrevocable execution,
   whose attempt cannot fail, so its maximum run is exactly bounded.

   Exit 0 iff both halves hold.  Wired into [make fault-smoke] / [make
   check]. *)

let threads = 8
let tx_per_thread = 200
let accesses_per_tx = 8
let region_words = 64
let seed = ref 42

(* Escalation budget under test: must match [Cm_intf.default_adaptive]. *)
let k =
  match Cm.Cm_intf.default_adaptive with
  | Cm.Cm_intf.Adaptive { escalate_after; _ } -> escalate_after
  | _ -> assert false

let speclist =
  [ ("--seed", Arg.Set_int seed, "N  injector seed (default 42)") ]

let usage = "fault_smoke [--seed N]   (see also: make fault-smoke)"

(* Hot read-modify-write mix over a small shared region: every pair of
   transactions conflicts with high probability, so the storm's spurious
   aborts compound with real contention. *)
let storm_run spec =
  let heap = Memory.Heap.create ~words:(1 lsl 14) in
  let base = Memory.Heap.alloc heap region_words in
  let engine = Engines.make (Engines.with_table_bits 10 spec) heap in
  let remaining = Array.make threads tx_per_thread in
  let r =
    Harness.Workload.with_faults ~seed:!seed
      ~profile:Runtime.Inject.abort_storm (fun () ->
        Harness.Workload.run_fixed_work engine ~threads (fun ~tid ->
            if remaining.(tid) = 0 then false
            else begin
              remaining.(tid) <- remaining.(tid) - 1;
              let rng =
                Runtime.Rng.for_thread ~seed:(!seed + remaining.(tid)) ~tid
              in
              Stm_intf.Engine.atomic engine ~tid (fun tx ->
                  for _ = 1 to accesses_per_tx do
                    let a = base + Runtime.Rng.int rng region_words in
                    tx.write a (tx.read a + 1)
                  done);
              true
            end))
  in
  (r, Runtime.Inject.injected_aborts ())

let () =
  Arg.parse speclist
    (fun a ->
      prerr_endline (Printf.sprintf "stray argument %S" a);
      exit 2)
    usage;
  let cases =
    [
      (* (name, spec, bounded): [bounded] is the assertion direction. *)
      ("swisstm-adaptive", Engines.with_cm Cm.Cm_intf.default_adaptive
         Engines.swisstm, true);
      ("swisstm (two-phase)", Engines.swisstm, false);
      ("swisstm-timid", Engines.with_cm Cm.Cm_intf.Timid Engines.swisstm,
       false);
    ]
  in
  Printf.printf
    "abort-storm smoke: %d threads x %d tx, K = %d, seed = %d\n%!" threads
    tx_per_thread k !seed;
  let failures = ref 0 in
  List.iter
    (fun (name, spec, bounded) ->
      let r, injected = storm_run spec in
      let worst = r.Harness.Workload.stats.s_max_consecutive_aborts in
      let ok = if bounded then worst <= k else worst > k in
      if not ok then incr failures;
      Printf.printf
        "  %-22s commits=%-6d aborts=%-6d injected=%-6d worst-run=%-4d %s\n%!"
        name r.stats.s_commits
        (Stm_intf.Stats.total_aborts r.stats)
        injected worst
        (if ok then
           if bounded then Printf.sprintf "<= K  ok" else "> K   ok (unbounded as expected)"
         else if bounded then "EXCEEDS K  FAIL"
         else "within K — storm too weak to discriminate  FAIL");
      (* Sanity: every run must complete all its work. *)
      if r.ops <> threads * tx_per_thread then begin
        incr failures;
        Printf.printf "  %-22s INCOMPLETE: %d/%d ops\n%!" name r.ops
          (threads * tx_per_thread)
      end)
    cases;
  (* The global-lock control has no contention manager to bound abort runs,
     but it must face the same storm: spurious aborts surface as release-
     and-retry (counted as killed aborts), stalls and stretches lengthen
     the critical section.  Assert it completes and that each fault class
     actually fired through its hooks. *)
  let r, injected = storm_run Engines.Glock in
  let killed = r.Harness.Workload.stats.s_aborts_killed in
  let stretches = Runtime.Inject.injected_stretches () in
  let ok =
    r.ops = threads * tx_per_thread && killed > 0 && injected > 0
    && stretches > 0
  in
  if not ok then incr failures;
  Printf.printf
    "  %-22s commits=%-6d aborts=%-6d injected=%-6d stretches=%-4d %s\n%!"
    "glock (control)" r.stats.s_commits killed injected stretches
    (if ok then "faults observed  ok"
     else "faults not observed / incomplete  FAIL");
  if !failures = 0 then begin
    print_endline "fault-smoke PASS";
    exit 0
  end
  else begin
    Printf.printf "fault-smoke FAIL (%d)\n%!" !failures;
    exit 1
  end
