(* Schedule-exploration fuzzer: run random transactional programs on the
   engines under perturbed deterministic schedules, record each history,
   and check it for opacity.  Failures are shrunk and printed as
   replayable (engine, policy, program) triples; --corpus re-runs a stored
   triple, --self-check proves the checker catches a deliberately broken
   engine (swisstm with validation disabled). *)

let engine_arg = ref "all"
let policy_arg = ref "pct"
let seeds = ref 8
let progs = ref 10
let threads = ref 3
let cells = ref 8
let corpus = ref []
let self_check = ref false
let verbose = ref false
let inject = ref false
let inject_seed = ref 7
let epochs = ref false
let txds = ref false

let speclist =
  [
    ("--engine", Arg.Set_string engine_arg,
     "NAME  engine to fuzz, or 'all' (default all)");
    ("--policy", Arg.Set_string policy_arg,
     "P  scheduler family: earliest | random | pct (default pct)");
    ("--seeds", Arg.Set_int seeds,
     "N  scheduler seeds per program (default 8)");
    ("--progs", Arg.Set_int progs,
     "N  generated programs per engine (default 10)");
    ("--threads", Arg.Set_int threads, "N  threads per program (default 3)");
    ("--cells", Arg.Set_int cells, "N  shared cells per program (default 8)");
    ("--corpus", Arg.String (fun f -> corpus := f :: !corpus),
     "FILE  replay a stored (engine, policy, program) triple; repeatable");
    ("--self-check", Arg.Set self_check,
     "  fuzz the broken swisstm variant and require the checker to catch it");
    ("--inject", Arg.Set inject,
     "  arm the abort-storm fault injector: every run also faces spurious \
      aborts, holder stalls and stretched commits, and must stay opaque");
    ("--inject-seed", Arg.Set_int inject_seed,
     "N  fault-stream seed for --inject (default 7)");
    ("--epochs", Arg.Set epochs,
     "  arm the epoch reclaimer and the heap free-guard for every run \
      (epoch-wired engines announce; frees defer through limbo)");
    ("--txds", Arg.Set txds,
     "  fuzz the boosted collections instead of word programs: structure x \
      mode matrix (map/pqueue/queue, boosted/word) checked for strict \
      serializability against pure models");
    ("-v", Arg.Set verbose, "  verbose (report undecided runs)");
  ]

let usage = "stm_fuzz [options]   (see also: make fuzz-smoke)"

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let make_policy_of_family = function
  | "earliest" -> (fun (_ : int) -> Runtime.Sim.Earliest_first)
  | "random" -> Check.Fuzz.fuzz_random_policy
  | "pct" -> Check.Fuzz.fuzz_pct_policy
  | p -> die "unknown policy family %S (want earliest|random|pct)" p

let fuzz_engine ?stop_after ~name spec =
  let seeds = if !policy_arg = "earliest" then 1 else !seeds in
  let st =
    Check.Fuzz.fuzz ~spec ~name ~cells:!cells
      ~make_policy:(make_policy_of_family !policy_arg)
      ~seeds ~progs:!progs ~threads:!threads ~verbose:!verbose ?stop_after ()
  in
  let level =
    match Engines.contract spec with
    | Engines.Opaque -> "opacity"
    | Engines.Serializable -> "serializability"
  in
  Printf.printf "%-16s %4d runs, %d undecided, %d violation(s)  [%s]\n%!"
    name st.runs st.undecided
    (List.length st.failures)
    level;
  List.iter (Check.Fuzz.pp_failure stdout) st.failures;
  st

let () =
  Arg.parse speclist (fun a -> die "stray argument %S" a) usage;
  (* Injected faults are ordinary aborts/stalls from the engines' point of
     view, so every history must still pass the checker; the storm only
     drives the runs into rarer schedules (kill paths, long retry chains,
     escalation). *)
  if !inject then
    Runtime.Inject.arm ~seed:!inject_seed Runtime.Inject.abort_storm;
  (* Epoch announcements are plain atomics (no simulated cycles), so arming
     must not change any history; the runs merely exercise the reclaimer
     and the double-free guard underneath the checker. *)
  if !epochs then begin
    Memory.Heap.guard_on := true;
    Memory.Epoch.arm ()
  end;
  if !corpus <> [] then begin
    let bad = ref 0 in
    List.iter
      (fun file ->
        match Check.Fuzz.load_corpus file with
        | Error m ->
            incr bad;
            Printf.printf "%-40s PARSE ERROR: %s\n%!" file m
        | Ok entry -> (
            match Check.Fuzz.replay entry with
            | Ok () -> Printf.printf "%-40s ok\n%!" file
            | Error m ->
                incr bad;
                Printf.printf "%-40s FAIL: %s\n%!" file m))
      (List.rev !corpus);
    exit (if !bad > 0 then 1 else 0)
  end;
  if !txds then begin
    (* Boosted-collections mode: linearizability (strict serializability)
       of semantic histories instead of word-level opacity. *)
    let specs =
      if !engine_arg = "all" then
        List.filter_map
          (fun n -> Engines.of_string n |> Option.map (fun s -> (n, s)))
          Engines.known_names
      else
        match Engines.of_string !engine_arg with
        | Some s -> [ (!engine_arg, s) ]
        | None ->
            die "unknown engine %S (known: %s)" !engine_arg
              (String.concat ", " Engines.known_names)
    in
    let seeds = if !policy_arg = "earliest" then 1 else !seeds in
    let total =
      List.fold_left
        (fun acc (name, spec) ->
          let st =
            Check.Txfuzz.fuzz ~spec
              ~make_policy:(make_policy_of_family !policy_arg)
              ~seeds ~progs:!progs ~threads:!threads ~verbose:!verbose ()
          in
          Printf.printf
            "%-16s %4d txds runs, %d undecided, %d violation(s)  \
             [linearizability]\n%!"
            name st.runs st.undecided
            (List.length st.failures);
          List.iter
            (fun (label, m) -> Printf.printf "VIOLATION %s\n%s\n%!" label m)
            st.failures;
          acc + List.length st.failures)
        0 specs
    in
    exit (if total > 0 then 1 else 0)
  end;
  if !self_check then begin
    (* The checker must catch an engine with validation disabled within
       the smoke budget. *)
    let st =
      fuzz_engine ~stop_after:1 ~name:"swisstm-broken" Engines.swisstm_broken
    in
    if st.failures = [] then begin
      Printf.printf
        "SELF-CHECK FAILED: broken engine slipped past the checker\n%!";
      exit 1
    end
    else begin
      Printf.printf "self-check ok: broken engine caught\n%!";
      exit 0
    end
  end;
  let specs =
    if !engine_arg = "all" then
      List.filter_map
        (fun n -> Engines.of_string n |> Option.map (fun s -> (n, s)))
        Engines.known_names
    else
      match Engines.of_string !engine_arg with
      | Some s -> [ (!engine_arg, s) ]
      | None ->
          die "unknown engine %S (known: %s)" !engine_arg
            (String.concat ", " Engines.known_names)
  in
  let total_failures =
    List.fold_left
      (fun acc (name, spec) ->
        acc + List.length (fuzz_engine ~name spec).failures)
      0 specs
  in
  exit (if total_failures > 0 then 1 else 0)
